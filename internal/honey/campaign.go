package honey

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ecosys"
)

// ProbeOutcome is one row of the acceptance test (first experiment of
// Section 7.1: benign probe emails to ports 25/465/587).
type ProbeOutcome struct {
	Domain   string
	Behavior ecosys.ProbeBehavior
	Private  bool // WHOIS privacy-proxied registration
}

// Table5 splits probe outcomes by behavior and registration privacy —
// the exact layout of the paper's Table 5.
type Table5 struct {
	Public  map[ecosys.ProbeBehavior]int
	Private map[ecosys.ProbeBehavior]int
}

// Totals sums both columns.
func (t Table5) Totals() (public, private int) {
	for _, n := range t.Public {
		public += n
	}
	for _, n := range t.Private {
		private += n
	}
	return
}

// Campaign drives the two Section 7 experiments against the simulated
// ecosystem.
type Campaign struct {
	Eco    *ecosys.Ecosystem
	Beacon *Beacon
	Shell  *ShellAccount
	Key    string // token mint key
	From   string // sending identity
}

// RunProbe performs the acceptance experiment over the given domains.
func (c *Campaign) RunProbe(domains []string) (Table5, []ProbeOutcome) {
	t5 := Table5{
		Public:  make(map[ecosys.ProbeBehavior]int),
		Private: make(map[ecosys.ProbeBehavior]int),
	}
	var outcomes []ProbeOutcome
	for _, name := range domains {
		info, ok := c.Eco.Domains[name]
		if !ok {
			continue
		}
		o := ProbeOutcome{Domain: name, Behavior: info.Behavior, Private: info.Registrant.Private}
		if o.Private {
			t5.Private[o.Behavior]++
		} else {
			t5.Public[o.Behavior]++
		}
		outcomes = append(outcomes, o)
	}
	return t5, outcomes
}

// Accepting filters probe outcomes to domains that accepted without
// error — the honey-token targets.
func Accepting(outcomes []ProbeOutcome) []string {
	var out []string
	for _, o := range outcomes {
		if o.Behavior == ecosys.BehaviorAccept {
			out = append(out, o.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// Table6 computes the MX-host distribution among accepting domains.
func (c *Campaign) Table6(accepting []string) map[string]int {
	m := make(map[string]int)
	for _, name := range accepting {
		info, ok := c.Eco.Domains[name]
		if !ok || len(info.MX) == 0 {
			continue
		}
		m[info.MX[0]]++
	}
	return m
}

// HoneyReport summarizes the second experiment.
type HoneyReport struct {
	DomainsTargeted int
	EmailsSent      int
	// Opens counts distinct domains whose pixel fired.
	Opens int
	// TokenAccesses counts doc/docx/credential events.
	TokenAccesses int
	// CredentialUses counts shell/mailbox logins with honey credentials.
	CredentialUses int
}

// readerRemotes are the observation points of Section 7.2's anecdotes.
var readerRemotes = []string{
	"Caracas, Venezuela", "Orlando, Florida", "Warsaw, Poland",
	"Kyiv, Ukraine", "Amsterdam, Netherlands", "Shenzhen, China",
}

// RunHoney sends all four designs to every target domain exactly once
// (the paper: "we made sure to send one typosquatter registrant one of
// each email designs exactly once... one email to each typosquatting
// domain") and simulates the typosquatters' reactions: the rare domain
// that reads mail fetches the pixel after an hours-scale lag, sometimes
// revisits days later, and very rarely acts on the bait.
func (c *Campaign) RunHoney(targets []string, sentAt time.Time, rng *rand.Rand) HoneyReport {
	rep := HoneyReport{DomainsTargeted: len(targets)}
	opened := map[string]bool{}
	for _, name := range targets {
		info, ok := c.Eco.Domains[name]
		if !ok {
			continue
		}
		for _, design := range AllDesigns() {
			bait := Build(c.Key, "http://beacon.study.example", c.From,
				fmt.Sprintf("contact@%s", name), design)
			if c.Shell != nil && design == DesignShellCreds {
				c.Shell.Arm(bait.Token)
			}
			rep.EmailsSent++
			if info.Behavior != ecosys.BehaviorAccept || !info.ReadsMail {
				continue
			}
			// Hours-scale human lag before the first open.
			lag := time.Duration(float64(time.Hour) * (0.5 + rng.ExpFloat64()*6))
			remote := readerRemotes[rng.Intn(len(readerRemotes))]
			if rng.Float64() < 0.75 { // image-loading client
				c.Beacon.Record(bait.Token, AccessPixel, remote)
				c.recordAt(sentAt.Add(lag))
				if !opened[name] {
					opened[name] = true
					rep.Opens++
				}
				// Some emails are re-opened days later, occasionally from
				// elsewhere (the paper's 9- and 14-day revisits).
				if rng.Float64() < 0.25 {
					again := readerRemotes[rng.Intn(len(readerRemotes))]
					c.Beacon.Record(bait.Token, AccessPixel, again)
					c.recordAt(sentAt.Add(lag + time.Duration(1+rng.Intn(14))*24*time.Hour))
				}
			}
			switch design {
			case DesignDocLink:
				if rng.Float64() < 0.15 {
					c.Beacon.Record(bait.Token, AccessDoc, remote)
					rep.TokenAccesses++
				}
			case DesignDocxAttach:
				if rng.Float64() < 0.10 {
					c.Beacon.Record(bait.Token, AccessDocx, remote)
					rep.TokenAccesses++
				}
			case DesignShellCreds:
				if rng.Float64() < 0.08 {
					if c.Shell != nil {
						c.Shell.Attempt(bait.Creds.Username, bait.Creds.Password, remote)
					} else {
						c.Beacon.Record(bait.Token, AccessShell, remote)
					}
					rep.TokenAccesses++
					rep.CredentialUses++
				}
			case DesignEmailCreds:
				if rng.Float64() < 0.04 {
					c.Beacon.Record(bait.Token, AccessMailbox, remote)
					rep.TokenAccesses++
					rep.CredentialUses++
				}
			}
		}
	}
	return rep
}

// recordAt back-dates the most recent beacon hit; the beacon's own clock
// is wall time, but the campaign runs in simulated time.
func (c *Campaign) recordAt(t time.Time) {
	c.Beacon.mu.Lock()
	defer c.Beacon.mu.Unlock()
	if n := len(c.Beacon.hits); n > 0 {
		c.Beacon.hits[n-1].When = t
	}
}
