package honey

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ecosys"
	"repro/internal/extract"
	"repro/internal/mailmsg"
)

func TestMintDeterministicAndDistinct(t *testing.T) {
	a := Mint("key", "gmial.com", DesignDocLink)
	b := Mint("key", "gmial.com", DesignDocLink)
	if a != b {
		t.Error("tokens not deterministic")
	}
	if Mint("key", "gmial.com", DesignDocxAttach) == a {
		t.Error("designs share a token")
	}
	if Mint("key", "outlo0k.com", DesignDocLink) == a {
		t.Error("domains share a token")
	}
	if Mint("other", "gmial.com", DesignDocLink) == a {
		t.Error("keys share a token")
	}
}

func TestBuildDesigns(t *testing.T) {
	for _, d := range AllDesigns() {
		bait := Build("k", "http://b.example", "me@corp.example", "contact@gmial.com", d)
		if bait.Msg == nil || bait.Token == "" {
			t.Fatalf("%v: empty bait", d)
		}
		if _, err := mailmsg.Parse(bait.Msg.Bytes()); err != nil {
			t.Fatalf("%v: unparseable: %v", d, err)
		}
		urls := ExtractURLs(bait.Msg)
		foundPixel := false
		for _, u := range urls {
			if strings.Contains(u, "/pixel/"+string(bait.Token)) {
				foundPixel = true
			}
		}
		if !foundPixel {
			t.Errorf("%v: tracking pixel missing from %v", d, urls)
		}
		switch d {
		case DesignEmailCreds, DesignShellCreds:
			if !strings.Contains(bait.Msg.Body, bait.Creds.Password) {
				t.Errorf("%v: credentials missing", d)
			}
		case DesignDocLink:
			if !strings.Contains(bait.Msg.Body, "/doc/"+string(bait.Token)) {
				t.Errorf("doc link missing")
			}
		case DesignDocxAttach:
			if len(bait.Msg.Attachments) != 1 {
				t.Fatalf("attachment missing")
			}
			text, err := extract.Text(bait.Msg.Attachments[0].Filename, bait.Msg.Attachments[0].Data)
			if err != nil {
				t.Fatalf("attachment not extractable: %v", err)
			}
			if !strings.Contains(text, "/docx/"+string(bait.Token)) {
				t.Errorf("docx beacon missing: %q", text)
			}
		}
	}
}

func TestBeaconHTTP(t *testing.T) {
	b := NewBeacon(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := make(chan net.Addr, 1)
	done := make(chan struct{})
	go func() { defer close(done); b.ListenAndServe(ctx, "127.0.0.1:0", bound) }()
	base := "http://" + (<-bound).String()

	tok := Mint("k", "gmial.com", DesignDocLink)
	// Pixel fetch.
	resp, err := http.Get(fmt.Sprintf("%s/pixel/%s.png", base, tok))
	if err != nil {
		t.Fatal(err)
	}
	png, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(png) != len(onePixelPNG) {
		t.Errorf("pixel response = %d, %d bytes", resp.StatusCode, len(png))
	}
	// Document view.
	resp, err = http.Get(fmt.Sprintf("%s/doc/%s", base, tok))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Tax Document") {
		t.Errorf("doc body = %q", body)
	}
	// Docx phone-home.
	if resp, err = http.Get(fmt.Sprintf("%s/docx/%s", base, tok)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Bad path.
	if resp, err = http.Get(base + "/pixel/a/b/c"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	hits := b.HitsFor(tok)
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
	kinds := map[AccessKind]bool{}
	for _, h := range hits {
		kinds[h.Kind] = true
		if h.Remote == "" || h.When.IsZero() {
			t.Error("hit missing metadata")
		}
	}
	if !kinds[AccessPixel] || !kinds[AccessDoc] || !kinds[AccessDocx] {
		t.Errorf("kinds = %v", kinds)
	}
	b.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("beacon did not stop")
	}
}

func TestShellAccountTCP(t *testing.T) {
	b := NewBeacon(nil)
	sh := NewShellAccount(b)
	tok := Mint("k", "gmial.com", DesignShellCreds)
	sh.Arm(tok)
	creds := CredsFor(tok)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := make(chan net.Addr, 1)
	go sh.ListenAndServe(ctx, "127.0.0.1:0", bound)
	addr := (<-bound).String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	r := bufio.NewReader(conn)
	r.ReadString(' ') // "login: "
	fmt.Fprintf(conn, "%s\n", creds.Username)
	r.ReadString(' ') // "password: "
	fmt.Fprintf(conn, "%s\n", creds.Password)
	line, err := r.ReadString('\n')
	if err != nil || !strings.Contains(line, "denied") {
		t.Errorf("response = %q, %v", line, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for len(b.HitsFor(tok)) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	hits := b.HitsFor(tok)
	if len(hits) != 1 || hits[0].Kind != AccessShell {
		t.Fatalf("hits = %v", hits)
	}
	if sh.Attempt("unknown-user", "x", "nowhere") {
		t.Error("unknown user accepted as honey")
	}
}

func ecoForCampaign(t *testing.T) *ecosys.Ecosystem {
	t.Helper()
	return ecosys.Generate(ecosys.Config{
		Targets: 150, UniverseSize: 1500, Seed: 9, BulkSquatters: 8, SharedMailHosts: 6,
	})
}

func TestCampaignProbeTable5(t *testing.T) {
	eco := ecoForCampaign(t)
	c := &Campaign{Eco: eco, Beacon: NewBeacon(nil), Key: "k", From: "probe@study.example"}
	var domains []string
	for _, d := range eco.TyposquattingDomains() {
		domains = append(domains, d.Name)
	}
	t5, outcomes := c.RunProbe(domains)
	pub, priv := t5.Totals()
	if pub+priv != len(outcomes) || len(outcomes) != len(domains) {
		t.Fatalf("totals %d+%d != %d", pub, priv, len(outcomes))
	}
	if pub == 0 || priv == 0 {
		t.Error("both registration classes should appear")
	}
	acc := Accepting(outcomes)
	if len(acc) == 0 {
		t.Fatal("no accepting domains")
	}
	// Accepting set must match behavior ground truth.
	for _, name := range acc {
		if eco.Domains[name].Behavior != ecosys.BehaviorAccept {
			t.Fatalf("%s in accepting set with behavior %v", name, eco.Domains[name].Behavior)
		}
	}
	// Probing an unknown domain is skipped, not counted.
	t5b, out2 := c.RunProbe([]string{"not-in-ecosystem.test"})
	if p, q := t5b.Totals(); p+q != 0 || len(out2) != 0 {
		t.Error("unknown domain counted")
	}
}

func TestCampaignTable6Concentration(t *testing.T) {
	eco := ecoForCampaign(t)
	c := &Campaign{Eco: eco, Beacon: NewBeacon(nil), Key: "k", From: "probe@study.example"}
	var domains []string
	for _, d := range eco.TyposquattingDomains() {
		domains = append(domains, d.Name)
	}
	_, outcomes := c.RunProbe(domains)
	acc := Accepting(outcomes)
	t6 := c.Table6(acc)
	if len(t6) == 0 {
		t.Fatal("empty table 6")
	}
	total, max := 0, 0
	for _, n := range t6 {
		total += n
		if n > max {
			max = n
		}
	}
	// Table 6's shape: the top MX host alone carries a large share.
	if frac := float64(max) / float64(total); frac < 0.2 {
		t.Errorf("top MX share = %.2f, want concentrated (paper: 0.44)", frac)
	}
}

func TestCampaignHoneyRunScarcity(t *testing.T) {
	eco := ecoForCampaign(t)
	beacon := NewBeacon(nil)
	sh := NewShellAccount(beacon)
	c := &Campaign{Eco: eco, Beacon: beacon, Shell: sh, Key: "k", From: "victim@study.example"}
	var domains []string
	for _, d := range eco.TyposquattingDomains() {
		domains = append(domains, d.Name)
	}
	_, outcomes := c.RunProbe(domains)
	acc := Accepting(outcomes)
	rng := rand.New(rand.NewSource(11))
	sentAt := time.Date(2017, 6, 15, 9, 0, 0, 0, time.UTC)
	rep := c.RunHoney(acc, sentAt, rng)
	if rep.EmailsSent != 4*len(acc) {
		t.Errorf("sent %d, want %d (4 per domain)", rep.EmailsSent, 4*len(acc))
	}
	// The paper's core negative result: opens are rare, actions rarer.
	if rep.Opens > len(acc)/10 {
		t.Errorf("opens = %d of %d domains — too common", rep.Opens, len(acc))
	}
	if rep.TokenAccesses > rep.EmailsSent/50 {
		t.Errorf("token accesses = %d — too common", rep.TokenAccesses)
	}
	if rep.CredentialUses > rep.TokenAccesses {
		t.Error("credential uses exceed token accesses")
	}
	// Every beacon hit must lag the send by at least ~30 minutes.
	for _, h := range beacon.Hits() {
		if h.When.Before(sentAt.Add(25 * time.Minute)) {
			t.Errorf("hit at %v too soon after send %v", h.When, sentAt)
		}
	}
}

func TestAccessKindStrings(t *testing.T) {
	for k := AccessPixel; k <= AccessMailbox; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	for _, d := range AllDesigns() {
		if d.String() == "" {
			t.Errorf("design %d unnamed", d)
		}
	}
}
