package distance

// Visual distance (Section 3): "how different the mistyped character looks
// compared to the original character", computed from heuristic rules. The
// paper's key observations are that confusing a letter with a lookalike
// number ("o"/"0", "l"/"1") is much more likely to survive a visual check
// than swapping two unrelated letters, and that visually-near typos
// (ohtlook.com, outlo0k.com) dominate the email haul.
//
// We assign each single-character confusion a cost in [0, 1]: 0 means the
// strings are indistinguishable at a glance, 1 means the change is
// obvious. Multi-edit strings sum per-edit costs.

// confusionPairs maps visually-similar character pairs to a low cost.
// Both orientations are implied.
var confusionPairs = map[[2]rune]float64{
	{'o', '0'}: 0.05,
	{'l', '1'}: 0.05,
	{'i', '1'}: 0.10,
	{'i', 'l'}: 0.10,
	{'i', 'j'}: 0.25,
	{'g', 'q'}: 0.30,
	{'g', '9'}: 0.25,
	{'q', '9'}: 0.30,
	{'b', '6'}: 0.30,
	{'s', '5'}: 0.25,
	{'z', '2'}: 0.30,
	{'a', '4'}: 0.45,
	{'e', '3'}: 0.35,
	{'t', '7'}: 0.40,
	{'b', '8'}: 0.35,
	{'u', 'v'}: 0.20,
	{'v', 'w'}: 0.35,
	{'m', 'n'}: 0.30,
	{'n', 'h'}: 0.45,
	{'c', 'e'}: 0.50,
	{'c', 'o'}: 0.45,
	{'f', 't'}: 0.50,
	{'d', 'b'}: 0.45,
	{'p', 'q'}: 0.45,
	{'u', 'n'}: 0.55,
	{'r', 'n'}: 0.60,
}

// charConfusion returns the visual cost of mistaking a for b.
func charConfusion(a, b rune) float64 {
	a, b = lower(a), lower(b)
	if a == b {
		return 0
	}
	if c, ok := confusionPairs[[2]rune{a, b}]; ok {
		return c
	}
	if c, ok := confusionPairs[[2]rune{b, a}]; ok {
		return c
	}
	// Letter-digit confusions not listed are still more plausible than two
	// arbitrary letters per the paper's heuristic.
	if isDigit(a) != isDigit(b) {
		return 0.8
	}
	return 1.0
}

// visualWeights tunes the per-operation visibility of each DL-1 edit
// class. Doubled letters and swapped inner letters are notoriously hard to
// spot; an extra hyphen less so.
const (
	visAdditionRepeat = 0.15 // inserting a duplicate of a neighboring char
	visAdditionOther  = 0.70
	visAdditionHyphen = 0.45
	visDeletionRepeat = 0.15 // deleting one of a doubled pair
	visDeletionOther  = 0.60
	visTransposition  = 0.35
)

// VisualEditCost returns the visual distance contributed by the single
// edit turning target into typo (both at DL-1), in [0, 1]; ok=false when
// the strings are not at DL distance <= 1.
func VisualEditCost(target, typo string) (float64, bool) {
	op := ClassifyEdit(target, typo)
	rt, ry := []rune(target), []rune(typo)
	switch op {
	case OpNone:
		return 0, true
	case OpSubstitution:
		i, _ := firstLastDiff(rt, ry)
		return charConfusion(rt[i], ry[i]), true
	case OpTransposition:
		return visTransposition, true
	case OpAddition:
		pos, _ := EditPosition(target, typo)
		ins := ry[pos]
		if ins == '-' {
			return visAdditionHyphen, true
		}
		if (pos > 0 && rt[pos-1] == ins) || (pos < len(rt) && rt[pos] == ins) {
			return visAdditionRepeat, true
		}
		return visAdditionOther, true
	case OpDeletion:
		pos, _ := EditPosition(target, typo)
		del := rt[pos]
		if (pos > 0 && rt[pos-1] == del) || (pos+1 < len(rt) && rt[pos+1] == del) {
			return visDeletionRepeat, true
		}
		return visDeletionOther, true
	default:
		return 0, false
	}
}

// Visual returns the heuristic visual distance between two domain names:
// the sum of per-edit visual costs along a greedy alignment. For the DL-1
// pairs the study works with this equals VisualEditCost; for farther pairs
// it degrades gracefully (monotone in the number of visible differences).
func Visual(target, typo string) float64 {
	if c, ok := VisualEditCost(target, typo); ok {
		return c
	}
	// Greedy alignment fallback: walk both strings, charging confusion
	// cost for substitutions and fixed costs for length drift.
	rt, ry := []rune(target), []rune(typo)
	var cost float64
	i, j := 0, 0
	for i < len(rt) && j < len(ry) {
		if rt[i] == ry[j] {
			i++
			j++
			continue
		}
		// try resync: deletion from target or insertion into typo
		switch {
		case i+1 < len(rt) && rt[i+1] == ry[j]:
			cost += visDeletionOther
			i++
		case j+1 < len(ry) && rt[i] == ry[j+1]:
			cost += visAdditionOther
			j++
		default:
			cost += charConfusion(rt[i], ry[j])
			i++
			j++
		}
	}
	cost += float64(len(rt)-i)*visDeletionOther + float64(len(ry)-j)*visAdditionOther
	return cost
}

// NormalizedVisual is Visual divided by the target length — the feature
// form the regression of Section 6.2 consumes ("visual distance heuristic
// normalized by the length of the original domain").
func NormalizedVisual(target, typo string) float64 {
	n := len([]rune(SLD(target)))
	if n == 0 {
		return 0
	}
	return Visual(SLD(target), SLD(typo)) / float64(n)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }
