package distance

// DamerauLevenshtein returns the minimum number of insertions, deletions,
// substitutions and transpositions of adjacent characters needed to turn a
// into b (the restricted-edit / optimal-string-alignment variant commonly
// used in the typosquatting literature, where each substring may be edited
// at most once).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(
				prev[j]+1,      // deletion
				cur[j-1]+1,     // insertion
				prev[j-1]+cost, // substitution / match
			)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t // transposition
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// EditOp labels the kind of single edit separating two strings at DL
// distance one. The paper's Figure 9 compares typo-domain popularity
// across exactly these four classes.
type EditOp int

const (
	OpNone EditOp = iota // strings identical
	OpAddition
	OpDeletion
	OpSubstitution
	OpTransposition
	OpOther // DL distance > 1
)

func (op EditOp) String() string {
	switch op {
	case OpNone:
		return "none"
	case OpAddition:
		return "addition"
	case OpDeletion:
		return "deletion"
	case OpSubstitution:
		return "substitution"
	case OpTransposition:
		return "transposition"
	default:
		return "other"
	}
}

// ClassifyEdit determines which single-edit operation turns target into
// typo, from the typo-maker's perspective: OpAddition means the typist
// added a character. Returns OpOther when the DL distance exceeds one.
func ClassifyEdit(target, typo string) EditOp {
	if target == typo {
		return OpNone
	}
	rt, ry := []rune(target), []rune(typo)
	switch {
	case len(ry) == len(rt)+1:
		if isInsertionOf(rt, ry) {
			return OpAddition
		}
	case len(ry) == len(rt)-1:
		if isInsertionOf(ry, rt) {
			return OpDeletion
		}
	case len(ry) == len(rt):
		if i, j := firstLastDiff(rt, ry); i == j {
			return OpSubstitution
		} else if j == i+1 && rt[i] == ry[j] && rt[j] == ry[i] {
			return OpTransposition
		}
	}
	return OpOther
}

// EditPosition returns the index in the target where the single edit
// occurred and true, or 0,false when the strings are not at DL-1.
// Position matters to the correction model: mistakes at the start of a
// name are more salient and more likely to be caught.
func EditPosition(target, typo string) (int, bool) {
	op := ClassifyEdit(target, typo)
	rt, ry := []rune(target), []rune(typo)
	switch op {
	case OpAddition:
		for i := 0; i < len(rt); i++ {
			if rt[i] != ry[i] {
				return i, true
			}
		}
		return len(rt), true
	case OpDeletion, OpSubstitution, OpTransposition:
		for i := 0; i < len(rt) && i < len(ry); i++ {
			if rt[i] != ry[i] {
				return i, true
			}
		}
		return len(ry), true
	default:
		return 0, false
	}
}

// isInsertionOf reports whether long is short with exactly one extra rune.
func isInsertionOf(short, long []rune) bool {
	i, j, used := 0, 0, false
	for i < len(short) && j < len(long) {
		if short[i] == long[j] {
			i++
			j++
			continue
		}
		if used {
			return false
		}
		used = true
		j++
	}
	return true // any trailing extra rune in long is the insertion
}

// firstLastDiff returns the first and last indices at which two
// equal-length rune slices differ.
func firstLastDiff(a, b []rune) (int, int) {
	first, last := -1, -1
	for i := range a {
		if a[i] != b[i] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	return first, last
}

// FatFinger returns the fat-finger distance of Moore and Edelman: the
// minimum number of insertions, deletions, substitutions or transpositions
// *using letters adjacent on a QWERTY keyboard* to transform a into b.
// Edits whose operand is not QWERTY-adjacent to the neighboring context
// are charged an effectively infinite cost (represented by returning
// ok=false when no all-adjacent edit path of length <= 2 exists).
//
// In practice the paper uses FF at distance one ("FF-1 implies DL-1"), so
// this implementation answers the decision problems the study needs:
// IsFatFinger1 for the common case and a bounded search for distance two.
func FatFinger(a, b string) (int, bool) {
	if a == b {
		return 0, true
	}
	if IsFatFinger1(a, b) {
		return 1, true
	}
	// Bounded distance-2 search: apply every FF-1 edit to a and test FF-1
	// against b. Sufficient for the registration strategies in the paper.
	for _, mid := range fatFinger1Set(a) {
		if IsFatFinger1(mid, b) {
			return 2, true
		}
	}
	return 0, false
}

// IsFatFinger1 reports whether typo is exactly one fat-finger edit away
// from target: a substitution by an adjacent key, an insertion of a key
// adjacent to one of its new neighbors, a deletion, or a transposition of
// two neighboring characters. Deletions and transpositions involve no
// "wrong key" press and are always fat-finger per Moore and Edelman's
// definition.
func IsFatFinger1(target, typo string) bool {
	op := ClassifyEdit(target, typo)
	rt, ry := []rune(target), []rune(typo)
	switch op {
	case OpDeletion, OpTransposition:
		return true
	case OpSubstitution:
		i, _ := firstLastDiff(rt, ry)
		return Adjacent(rt[i], ry[i])
	case OpAddition:
		// Insertions of repeated characters are positionally ambiguous
		// ("outlookk" can be an insert at index 6 or 7), so consider every
		// index whose removal recovers the target. The inserted key is a
		// fat-finger if it duplicates a neighboring intended key (double
		// press) or is QWERTY-adjacent to one (finger slip en route).
		for idx := 0; idx < len(ry); idx++ {
			if string(ry[:idx])+string(ry[idx+1:]) != target {
				continue
			}
			ins := ry[idx]
			if idx > 0 && (rt[idx-1] == ins || Adjacent(rt[idx-1], ins)) {
				return true
			}
			if idx < len(rt) && (rt[idx] == ins || Adjacent(rt[idx], ins)) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// fatFinger1Set enumerates all strings at FF-1 from s over the domain
// charset.
func fatFinger1Set(s string) []string {
	rs := []rune(s)
	var out []string
	// deletions
	for i := range rs {
		out = append(out, string(rs[:i])+string(rs[i+1:]))
	}
	// transpositions
	for i := 0; i+1 < len(rs); i++ {
		if rs[i] == rs[i+1] {
			continue
		}
		t := append([]rune(nil), rs...)
		t[i], t[i+1] = t[i+1], t[i]
		out = append(out, string(t))
	}
	// adjacent substitutions
	for i, ch := range rs {
		for _, n := range Neighbors(ch) {
			t := append([]rune(nil), rs...)
			t[i] = n
			out = append(out, string(t))
		}
	}
	// adjacent (and double-press) insertions
	for i := 0; i <= len(rs); i++ {
		seen := map[rune]bool{}
		if i > 0 {
			seen[rs[i-1]] = true
			for _, n := range Neighbors(rs[i-1]) {
				seen[n] = true
			}
		}
		if i < len(rs) {
			seen[rs[i]] = true
			for _, n := range Neighbors(rs[i]) {
				seen[n] = true
			}
		}
		for _, r := range "abcdefghijklmnopqrstuvwxyz0123456789-" {
			if seen[r] {
				out = append(out, string(rs[:i])+string(r)+string(rs[i:]))
			}
		}
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
