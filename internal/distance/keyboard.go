// Package distance implements the string distance metrics the paper's
// typosquatting taxonomy is built on (Section 3): the Damerau-Levenshtein
// edit distance, Moore and Edelman's fat-finger distance (edits restricted
// to QWERTY-adjacent keys), and a heuristic visual distance capturing how
// easily the mistyped name is confused with the original at a glance.
package distance

import "strings"

// qwertyRows is the physical layout used for adjacency and fat-finger
// computations. Row offsets approximate the stagger of a standard QWERTY
// keyboard.
var qwertyRows = []struct {
	keys   string
	offset float64 // horizontal offset of the row, in key widths
	row    int
}{
	{"1234567890-", 0.0, 0},
	{"qwertyuiop", 0.5, 1},
	{"asdfghjkl", 0.75, 2},
	{"zxcvbnm", 1.25, 3},
}

type keyPos struct {
	x, y float64
	ok   bool
}

var keyPositions = buildKeyPositions()

func buildKeyPositions() map[rune]keyPos {
	m := make(map[rune]keyPos)
	for _, r := range qwertyRows {
		for i, ch := range r.keys {
			m[ch] = keyPos{x: r.offset + float64(i), y: float64(r.row), ok: true}
		}
	}
	return m
}

// KeyboardDistance returns the Euclidean distance between two keys on a
// QWERTY keyboard, in key widths. Unknown characters (valid in domain
// names but off the main key block, e.g. '.') report a large distance and
// ok=false.
func KeyboardDistance(a, b rune) (float64, bool) {
	pa, oka := keyPositions[lower(a)]
	pb, okb := keyPositions[lower(b)]
	if !oka || !okb {
		return 10, false
	}
	dx := pa.x - pb.x
	dy := pa.y - pb.y
	return sqrt(dx*dx + dy*dy), true
}

// Adjacent reports whether two keys are adjacent on a QWERTY keyboard —
// the "fat finger" relation of Moore and Edelman. A key is not adjacent to
// itself.
func Adjacent(a, b rune) bool {
	a, b = lower(a), lower(b)
	if a == b {
		return false
	}
	d, ok := KeyboardDistance(a, b)
	return ok && d < 1.5
}

// Neighbors returns the set of keys adjacent to ch on a QWERTY keyboard,
// in stable order.
func Neighbors(ch rune) []rune {
	ch = lower(ch)
	if _, ok := keyPositions[ch]; !ok {
		return nil
	}
	var out []rune
	for _, r := range qwertyRows {
		for _, cand := range r.keys {
			if Adjacent(ch, cand) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func lower(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r - 'A' + 'a'
	}
	return r
}

func sqrt(x float64) float64 {
	// Newton iterations; avoids importing math for one call and keeps the
	// package allocation-free in hot paths.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// DomainCharset reports whether s contains only characters legal in a DNS
// label context handled by this package: lowercase letters, digits, '-'
// and '.' separators.
func DomainCharset(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '-' || r == '.':
		default:
			return false
		}
	}
	return true
}

// SLD returns the second-level label of a domain name ("gmail" for
// "gmail.com"), which is where typos are generated and measured; the TLD
// is held fixed by the paper's methodology.
func SLD(domain string) string {
	domain = strings.TrimSuffix(domain, ".")
	parts := strings.Split(domain, ".")
	if len(parts) < 2 {
		return domain
	}
	return parts[len(parts)-2]
}

// TLD returns the top-level label ("com" for "gmail.com"), or "" if the
// name has a single label.
func TLD(domain string) string {
	domain = strings.TrimSuffix(domain, ".")
	i := strings.LastIndexByte(domain, '.')
	if i < 0 {
		return ""
	}
	return domain[i+1:]
}
