package distance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDamerauLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"gmail", "gmail", 0},
		{"gmail", "gmial", 1},  // transposition
		{"gmail", "gmaill", 1}, // addition
		{"gmail", "gmal", 1},   // deletion
		{"gmail", "gmaik", 1},  // substitution
		{"gmail", "gamil", 1},  // adjacent transposition of m,a
		{"abcd", "badc", 2},    // two transpositions
		{"ca", "abc", 3},
		{"kitten", "sitting", 3},
		{"outlook", "outlo0k", 1},
		{"hotmail", "ho6mail", 1},
		{"verizon", "verizo0n", 1},
	}
	for _, tc := range tests {
		if got := DamerauLevenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("DL(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := DamerauLevenshtein(tc.b, tc.a); got != tc.want {
			t.Errorf("DL(%q, %q) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestClassifyEdit(t *testing.T) {
	tests := []struct {
		target, typo string
		want         EditOp
	}{
		{"gmail", "gmail", OpNone},
		{"gmail", "gmaiql", OpAddition},
		{"gmail", "gmal", OpDeletion},
		{"gmail", "gmael", OpSubstitution},
		{"gmail", "gmial", OpTransposition},
		{"gmail", "yahoo", OpOther},
		{"outlook", "outlo0k", OpSubstitution},
		{"outlook", "ohtlook", OpSubstitution}, // u->h, adjacent keys
		{"hotmail", "hotmial", OpTransposition},
		{"verizon", "verizonn", OpAddition},
		{"comcast", "comcat", OpDeletion},
		{"ab", "ba", OpTransposition},
		{"a", "", OpDeletion},
		{"", "a", OpAddition},
	}
	for _, tc := range tests {
		if got := ClassifyEdit(tc.target, tc.typo); got != tc.want {
			t.Errorf("ClassifyEdit(%q, %q) = %v, want %v", tc.target, tc.typo, got, tc.want)
		}
	}
}

func TestClassifyEditConsistentWithDL(t *testing.T) {
	// Any pair classified as a single op must have DL distance exactly 1.
	rng := rand.New(rand.NewSource(3))
	alphabet := []rune("abcdefgh")
	randStr := func(n int) string {
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for trial := 0; trial < 2000; trial++ {
		a := randStr(1 + rng.Intn(8))
		b := randStr(1 + rng.Intn(8))
		op := ClassifyEdit(a, b)
		dl := DamerauLevenshtein(a, b)
		switch op {
		case OpNone:
			if dl != 0 {
				t.Fatalf("OpNone but DL=%d for %q,%q", dl, a, b)
			}
		case OpAddition, OpDeletion, OpSubstitution, OpTransposition:
			if dl != 1 {
				t.Fatalf("op=%v but DL=%d for %q,%q", op, dl, a, b)
			}
		case OpOther:
			if dl <= 1 {
				t.Fatalf("OpOther but DL=%d for %q,%q", dl, a, b)
			}
		}
	}
}

func TestEditPosition(t *testing.T) {
	tests := []struct {
		target, typo string
		pos          int
		ok           bool
	}{
		{"gmail", "gmaiql", 4, true},
		{"gmail", "gmailq", 5, true},
		{"gmail", "qgmail", 0, true},
		{"gmail", "mail", 0, true},
		{"gmail", "gmal", 3, true},
		{"gmail", "xmail", 0, true},
		{"gmail", "gmial", 2, true},
		{"gmail", "zzzzz", 0, false},
	}
	for _, tc := range tests {
		pos, ok := EditPosition(tc.target, tc.typo)
		if pos != tc.pos || ok != tc.ok {
			t.Errorf("EditPosition(%q, %q) = %d,%v want %d,%v", tc.target, tc.typo, pos, ok, tc.pos, tc.ok)
		}
	}
}

func TestAdjacency(t *testing.T) {
	adj := [][2]rune{{'g', 'h'}, {'g', 'f'}, {'g', 't'}, {'g', 'b'}, {'q', 'w'}, {'o', '0'}, {'o', 'p'}, {'m', 'n'}}
	for _, p := range adj {
		if !Adjacent(p[0], p[1]) {
			t.Errorf("Adjacent(%c, %c) = false, want true", p[0], p[1])
		}
		if !Adjacent(p[1], p[0]) {
			t.Errorf("Adjacent(%c, %c) = false, want true (symmetry)", p[1], p[0])
		}
	}
	notAdj := [][2]rune{{'q', 'p'}, {'a', 'l'}, {'g', 'g'}, {'z', '1'}, {'a', '.'}}
	for _, p := range notAdj {
		if Adjacent(p[0], p[1]) {
			t.Errorf("Adjacent(%c, %c) = true, want false", p[0], p[1])
		}
	}
}

func TestNeighbors(t *testing.T) {
	ns := Neighbors('g')
	set := map[rune]bool{}
	for _, n := range ns {
		set[n] = true
	}
	for _, want := range []rune{'f', 'h', 't', 'y', 'v', 'b'} {
		if !set[want] {
			t.Errorf("Neighbors('g') missing %c (got %q)", want, string(ns))
		}
	}
	if set['g'] {
		t.Error("key adjacent to itself")
	}
	if Neighbors('.') != nil {
		t.Error("Neighbors of unknown key should be nil")
	}
}

func TestKeyboardDistance(t *testing.T) {
	if d, ok := KeyboardDistance('a', 's'); !ok || d < 0.9 || d > 1.1 {
		t.Errorf("KeyboardDistance(a,s) = %v,%v want ~1", d, ok)
	}
	if d, ok := KeyboardDistance('q', 'p'); !ok || d < 8 {
		t.Errorf("KeyboardDistance(q,p) = %v,%v want >= 8", d, ok)
	}
	if _, ok := KeyboardDistance('a', '.'); ok {
		t.Error("KeyboardDistance with unknown key should report !ok")
	}
	if d, ok := KeyboardDistance('A', 'S'); !ok || d > 1.2 {
		t.Errorf("uppercase not folded: %v %v", d, ok)
	}
}

func TestIsFatFinger1(t *testing.T) {
	tests := []struct {
		target, typo string
		want         bool
	}{
		{"gmail", "gmial", true},     // transposition: always FF
		{"gmail", "gmal", true},      // deletion: always FF
		{"gmail", "gmaik", true},     // l->k adjacent
		{"gmail", "gmaiz", false},    // l->z not adjacent
		{"outlook", "outlo0k", true}, // o->0 adjacent on keyboard
		{"gmail", "gmaiql", false},   // q not adjacent to i or l
		{"gmail", "gmnail", true},    // n adjacent to m
		{"gmail", "gmail", false},    // identical
		{"gmail", "yahoo", false},
	}
	for _, tc := range tests {
		if got := IsFatFinger1(tc.target, tc.typo); got != tc.want {
			t.Errorf("IsFatFinger1(%q, %q) = %v, want %v", tc.target, tc.typo, got, tc.want)
		}
	}
}

func TestFatFinger(t *testing.T) {
	if d, ok := FatFinger("gmail", "gmail"); !ok || d != 0 {
		t.Errorf("FatFinger identity = %d,%v", d, ok)
	}
	if d, ok := FatFinger("gmail", "gmial"); !ok || d != 1 {
		t.Errorf("FatFinger transposition = %d,%v", d, ok)
	}
	if d, ok := FatFinger("gmail", "gmia"); !ok || d != 2 {
		t.Errorf("FatFinger two edits = %d,%v, want 2,true", d, ok)
	}
	if _, ok := FatFinger("gmail", "yahoo"); ok {
		t.Error("FatFinger on unrelated strings should fail")
	}
}

func TestFatFinger1ImpliesDL1(t *testing.T) {
	// Paper: "A fat-finger distance of one (FF-1) implies a DL-1 distance."
	targets := []string{"gmail", "outlook", "hotmail", "verizon", "comcast", "paypal"}
	for _, target := range targets {
		for _, typo := range fatFinger1Set(target) {
			if typo == target {
				continue
			}
			if dl := DamerauLevenshtein(target, typo); dl != 1 {
				t.Fatalf("FF-1 string %q of %q has DL=%d", typo, target, dl)
			}
			if !IsFatFinger1(target, typo) {
				t.Fatalf("fatFinger1Set produced %q of %q not recognized by IsFatFinger1", typo, target)
			}
		}
	}
}

func TestVisualEditCost(t *testing.T) {
	// o->0 must be far cheaper than o->k; doubled-letter tricks cheap.
	c00, ok := VisualEditCost("outlook", "outlo0k")
	if !ok {
		t.Fatal("outlo0k should be DL-1")
	}
	cok, ok := VisualEditCost("outlook", "outlokk")
	if !ok {
		t.Fatal("outlokk should be DL-1")
	}
	if c00 >= cok {
		t.Errorf("visual(o->0)=%v should be < visual(o->k)=%v", c00, cok)
	}
	cdd, ok := VisualEditCost("gmail", "gmmail") // doubled letter
	if !ok || cdd > 0.3 {
		t.Errorf("doubled-letter addition cost = %v, want small", cdd)
	}
	cq, ok := VisualEditCost("gmail", "gmaiql") // conspicuous insert
	if !ok || cq < cdd {
		t.Errorf("conspicuous addition %v should cost more than doubling %v", cq, cdd)
	}
	if c, ok := VisualEditCost("gmail", "gmail"); !ok || c != 0 {
		t.Errorf("identity visual cost = %v, %v", c, ok)
	}
	if _, ok := VisualEditCost("gmail", "yahoo"); ok {
		t.Error("DL>1 pair should report !ok")
	}
}

func TestVisualOrderingMatchesPaper(t *testing.T) {
	// The paper observes that visually-near typos of popular domains
	// (ohtlook, outlo0k, evrizon) receive the most mail. At minimum the
	// metric must rank outlo0k (lookalike digit) below outlopk
	// (visible letter change).
	vClose := Visual("outlook", "outlo0k")
	vFar := Visual("outlook", "outlopk")
	if vClose >= vFar {
		t.Errorf("Visual(outlo0k)=%v should be < Visual(outlopk)=%v", vClose, vFar)
	}
	// Transposition should be mid-range: harder to see than lookalike
	// digits, easier than a random letter swap.
	vTrans := Visual("outlook", "uotlook")
	if !(vClose < vTrans && vTrans < vFar) {
		t.Errorf("ordering violated: %v < %v < %v expected", vClose, vTrans, vFar)
	}
}

func TestVisualFallbackMonotone(t *testing.T) {
	// Multi-edit strings accumulate cost.
	v1 := Visual("gmail", "gmal")
	v2 := Visual("gmail", "gml") // two deletions
	if v2 <= v1 {
		t.Errorf("Visual two-deletions %v should exceed one %v", v2, v1)
	}
	if Visual("gmail", "gmail") != 0 {
		t.Error("Visual identity must be 0")
	}
}

func TestNormalizedVisual(t *testing.T) {
	nv := NormalizedVisual("gmail.com", "gmal.com")
	raw := Visual("gmail", "gmal")
	if want := raw / 5; !almostEq(nv, want) {
		t.Errorf("NormalizedVisual = %v, want %v", nv, want)
	}
	if NormalizedVisual("", "") != 0 {
		t.Error("NormalizedVisual of empty = 0")
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestSLDAndTLD(t *testing.T) {
	tests := []struct {
		in, sld, tld string
	}{
		{"gmail.com", "gmail", "com"},
		{"gmail.com.", "gmail", "com"},
		{"mail.google.com", "google", "com"},
		{"localhost", "localhost", ""},
	}
	for _, tc := range tests {
		if got := SLD(tc.in); got != tc.sld {
			t.Errorf("SLD(%q) = %q, want %q", tc.in, got, tc.sld)
		}
		if got := TLD(tc.in); got != tc.tld {
			t.Errorf("TLD(%q) = %q, want %q", tc.in, got, tc.tld)
		}
	}
}

func TestDomainCharset(t *testing.T) {
	if !DomainCharset("gmail-0.com") {
		t.Error("valid charset rejected")
	}
	for _, bad := range []string{"GMAIL.com", "gmail com", "gmail@com", "gmäil.com"} {
		if DomainCharset(bad) {
			t.Errorf("DomainCharset(%q) = true, want false", bad)
		}
	}
}

// Property: DL is a metric — symmetric, zero iff equal, triangle
// inequality (on the OSA variant the triangle inequality can be violated
// in pathological cases, so we check symmetry and identity plus an upper
// bound by length difference).
func TestDLProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		d1, d2 := DamerauLevenshtein(a, b), DamerauLevenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (a == b) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		return d1 >= diff && d1 <= maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every single-edit mutation is classified as that op and lands
// at DL-1.
func TestMutationClassificationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const alphabet = "abcdefghijklmnopqrstuvwxyz"
	randStr := func(n int) []rune {
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = rune(alphabet[rng.Intn(len(alphabet))])
		}
		return rs
	}
	for trial := 0; trial < 1000; trial++ {
		base := randStr(4 + rng.Intn(8))
		switch rng.Intn(4) {
		case 0: // addition
			pos := rng.Intn(len(base) + 1)
			ins := rune(alphabet[rng.Intn(26)])
			typo := string(base[:pos]) + string(ins) + string(base[pos:])
			if typo == string(base) {
				continue
			}
			if op := ClassifyEdit(string(base), typo); op != OpAddition {
				t.Fatalf("addition %q->%q classified %v", string(base), typo, op)
			}
		case 1: // deletion
			pos := rng.Intn(len(base))
			typo := string(base[:pos]) + string(base[pos+1:])
			if typo == string(base) {
				continue
			}
			if op := ClassifyEdit(string(base), typo); op != OpDeletion {
				t.Fatalf("deletion %q->%q classified %v", string(base), typo, op)
			}
		case 2: // substitution
			pos := rng.Intn(len(base))
			sub := rune(alphabet[rng.Intn(26)])
			if sub == base[pos] {
				continue
			}
			typo := append([]rune(nil), base...)
			typo[pos] = sub
			if op := ClassifyEdit(string(base), string(typo)); op != OpSubstitution {
				t.Fatalf("substitution %q->%q classified %v", string(base), string(typo), op)
			}
		case 3: // transposition
			if len(base) < 2 {
				continue
			}
			pos := rng.Intn(len(base) - 1)
			if base[pos] == base[pos+1] {
				continue
			}
			typo := append([]rune(nil), base...)
			typo[pos], typo[pos+1] = typo[pos+1], typo[pos]
			if op := ClassifyEdit(string(base), string(typo)); op != OpTransposition {
				t.Fatalf("transposition %q->%q classified %v", string(base), string(typo), op)
			}
		}
	}
}

func TestEditOpString(t *testing.T) {
	ops := map[EditOp]string{
		OpNone: "none", OpAddition: "addition", OpDeletion: "deletion",
		OpSubstitution: "substitution", OpTransposition: "transposition", OpOther: "other",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("EditOp(%d).String() = %q, want %q", op, got, want)
		}
	}
}
