// Package par is the repository's deterministic data-parallelism layer:
// a bounded worker pool with ordered result merge, where every work item
// receives its own PRNG derived from (seed, index) by a splitmix64
// finalizer. Because an item's randomness is a pure function of the seed
// and its position — never of scheduling — the output of Map is
// byte-identical to a sequential run at any GOMAXPROCS and any worker
// count. That is the property the simulation substrate leans on: the
// ecosystem generator, the collection run and the experiment suite all
// fan out through this package and still replay bit-for-bit from a seed
// (the same contract internal/faultnet established per-connection).
//
// The pool is safe by construction for the repository's own analyzers:
// workers are spawned by a bounded counter loop (unboundedspawn's
// worker-pool exemption), each worker's only blocking operation is
// ranging over the work channel (goleak's channel exit tie), and Map
// does not return before a WaitGroup join — no goroutine outlives a
// call.
package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers overrides the pool size; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers fixes the pool size for subsequent Map calls. n <= 0
// restores the default (GOMAXPROCS). Seed-equivalence tests pin this to
// 1 to obtain the reference sequential run.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// NumWorkers reports the pool size Map will use.
func NumWorkers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SubSeed derives the PRNG seed for item index under seed, via the
// splitmix64 finalizer over a golden-ratio stream. Distinct indexes land
// in statistically independent streams, and the derivation is fixed
// forever: changing it would silently change every seeded run.
// Callers must keep their (seed, index) claims disjoint within a
// function — repolint's streamidx analyzer flags two derivations that
// claim the same statically-known index from the same seed.
func SubSeed(seed int64, index int) int64 {
	z := uint64(seed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Rand returns the private PRNG for item index under seed.
func Rand(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(seed, index)))
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in item order. fn receives the item's index, the item, and a
// PRNG derived from (seed, index); it must not touch shared mutable
// state. Results are written to distinct slice slots, so no ordering or
// locking is needed beyond the final join.
func Map[T, R any](seed int64, items []T, fn func(i int, item T, rng *rand.Rand) R) []R {
	out := make([]R, len(items))
	run(len(items), func(i int) {
		out[i] = fn(i, items[i], Rand(seed, i))
	})
	return out
}

// MapAt is Map for a window of a larger logical item sequence: item i of
// items is treated as global item base+i, and receives Rand(seed, base+i).
// Streaming callers split one long run into chunks and call MapAt per
// chunk; because each item's PRNG depends only on (seed, global index),
// the concatenated chunk outputs are byte-identical to a single
// Map(seed, all) over the whole sequence — at any chunk size and any
// worker count. fn receives the GLOBAL index.
func MapAt[T, R any](seed int64, base int, items []T, fn func(i int, item T, rng *rand.Rand) R) []R {
	out := make([]R, len(items))
	run(len(items), func(i int) {
		out[i] = fn(base+i, items[i], Rand(seed, base+i))
	})
	return out
}

// MapErr is Map for fallible fn. Every item runs regardless of other
// items' failures (items are independent by contract); the returned
// error is the lowest-index one, so the failure surfaced is the same
// one a sequential run would have hit first. On error the results of
// items before the failing index are still valid.
func MapErr[T, R any](seed int64, items []T, fn func(i int, item T, rng *rand.Rand) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	run(len(items), func(i int) {
		out[i], errs[i] = fn(i, items[i], Rand(seed, i))
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// run executes do(0..n-1) on min(NumWorkers, n) workers and joins them
// before returning.
func run(n int, do func(i int)) {
	w := NumWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
