package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// withWorkers runs f with the pool pinned to n workers and restores the
// default afterwards.
func withWorkers(n int, f func()) {
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestMapOrderedAndDeterministic(t *testing.T) {
	items := make([]int, 503)
	for i := range items {
		items[i] = i
	}
	render := func(workers int) []string {
		var out []string
		withWorkers(workers, func() {
			out = Map(42, items, func(i, item int, rng *rand.Rand) string {
				return fmt.Sprintf("%d:%d:%d", i, item, rng.Intn(1_000_000))
			})
		})
		return out
	}
	ref := render(1)
	for _, w := range []int{2, 3, 8, 64} {
		got := render(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %q, sequential ref %q", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(1, nil, func(i, item int, rng *rand.Rand) int { return item }); len(got) != 0 {
		t.Fatalf("nil items -> %v", got)
	}
	got := Map(1, []int{7}, func(i, item int, rng *rand.Rand) int { return item * 2 })
	if len(got) != 1 || got[0] != 14 {
		t.Fatalf("single item -> %v", got)
	}
}

func TestSubSeedStreamsDiffer(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10_000; i++ {
		s := SubSeed(20160604, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision: index %d and %d -> %d", prev, i, s)
		}
		seen[s] = i
	}
	// Different master seeds must give different streams for index 0.
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("master seed has no effect on index 0")
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	errLow, errHigh := errors.New("low"), errors.New("high")
	withWorkers(4, func() {
		out, err := MapErr(9, items, func(i, item int, rng *rand.Rand) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 6:
				return 0, errHigh
			}
			return item * item, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("err = %v, want the lowest-index error", err)
		}
		for i := 0; i < 3; i++ {
			if out[i] != i*i {
				t.Fatalf("result[%d] = %d before failing index", i, out[i])
			}
		}
	})
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(3, []string{"a", "bb"}, func(i int, item string, rng *rand.Rand) (int, error) {
		return len(item), nil
	})
	if err != nil || out[0] != 1 || out[1] != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestWorkersKnob(t *testing.T) {
	SetWorkers(3)
	if NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d after SetWorkers(3)", NumWorkers())
	}
	SetWorkers(-5)
	if NumWorkers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("NumWorkers = %d, want GOMAXPROCS default", NumWorkers())
	}
	SetWorkers(0)
}

// TestMapNoGoroutineLeak asserts the pool joins fully: Map must not
// return while any worker is still alive.
func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	withWorkers(16, func() {
		Map(5, make([]int, 1000), func(i, item int, rng *rand.Rand) int { return rng.Int() })
	})
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Map", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapAtChunkEquivalence is the streaming substrate's seed contract:
// splitting one logical sequence into chunks and mapping each chunk with
// MapAt at its global base offset reproduces Map over the whole sequence
// byte-for-byte, at any chunk size and any worker count.
func TestMapAtChunkEquivalence(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i, item int, rng *rand.Rand) string {
		return fmt.Sprintf("%d:%d:%d:%d", i, item, rng.Int63(), rng.Intn(97))
	}
	var ref []string
	withWorkers(1, func() { ref = Map(99, items, fn) })
	for _, chunk := range []int{1, 7, 64, 256, 1024} {
		for _, w := range []int{1, 3, 8} {
			var got []string
			withWorkers(w, func() {
				for base := 0; base < len(items); base += chunk {
					end := base + chunk
					if end > len(items) {
						end = len(items)
					}
					got = append(got, MapAt(99, base, items[base:end], fn)...)
				}
			})
			if len(got) != len(ref) {
				t.Fatalf("chunk=%d workers=%d: %d results, want %d", chunk, w, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("chunk=%d workers=%d: item %d = %q, want %q", chunk, w, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestMapAtGlobalIndex pins that fn observes the global index, not the
// chunk-local one.
func TestMapAtGlobalIndex(t *testing.T) {
	out := MapAt(7, 100, []int{10, 20}, func(i, item int, rng *rand.Rand) int {
		return i*1000 + item
	})
	if out[0] != 100010 || out[1] != 101020 {
		t.Fatalf("MapAt global indexes wrong: %v", out)
	}
}
