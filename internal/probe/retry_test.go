package probe

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ecosys"
	"repro/internal/faultnet"
	"repro/internal/smtpd"
)

// recordSleep captures backoff waits without real sleeping.
type recordSleep struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (r *recordSleep) sleep(_ context.Context, d time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.waits = append(r.waits, d)
	return nil
}

func (r *recordSleep) recorded() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.waits...)
}

func TestProbeRetriesDialFailuresWithBackoff(t *testing.T) {
	// Every dial is refused: the prober should burn its full retry budget
	// on the planned backoff schedule, then settle for SupportNoEmail.
	fnet := faultnet.New(7, faultnet.Plan{DialRefuseRate: 1})
	rs := &recordSleep{}
	p := &AddrProber{
		Timeout: time.Second,
		Dialer:  fnet.Dialer(nil),
		Retries: 2, BaseDelay: 10 * time.Millisecond, Sleep: rs.sleep,
	}
	got := p.Probe(context.Background(), "127.0.0.1:1", "refused.test")
	if got != ecosys.SupportNoEmail {
		t.Errorf("refused dial = %v, want SupportNoEmail", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	waits := rs.recorded()
	if len(waits) != len(want) {
		t.Fatalf("backoff = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v", i, waits[i], want[i])
		}
	}
	if n := fnet.Conns(); n != 3 {
		t.Errorf("dial attempts = %d, want 3", n)
	}
}

func TestProbeEventualSuccessAfterDialFailures(t *testing.T) {
	addr, stop := startSMTP(t, smtpd.Config{Hostname: "flaky.test"})
	defer stop()
	var calls atomic.Int64
	var d net.Dialer
	p := &AddrProber{
		Timeout: 2 * time.Second,
		Dialer: func(ctx context.Context, network, address string) (net.Conn, error) {
			if calls.Add(1) <= 2 {
				return nil, &net.OpError{Op: "dial", Net: network, Err: faultnet.ErrRefused}
			}
			return d.DialContext(ctx, network, address)
		},
		Retries: 3, Sleep: (&recordSleep{}).sleep,
	}
	if got := p.Probe(context.Background(), addr, "flaky.test"); got != ecosys.SupportPlain {
		t.Errorf("flaky-but-up server = %v, want SupportPlain", got)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("dial attempts = %d, want 3", n)
	}
}

// TestProbeCtxBudgetStopsSlowLoris is the regression test for the
// probe-side deadline fix: the attempt deadline derives from the
// remaining ctx budget, so a peer dribbling replies through a faultnet
// write-latency stall cannot hold the prober past its caller's deadline.
func TestProbeCtxBudgetStopsSlowLoris(t *testing.T) {
	// Server writes stall on a gate the test only opens during teardown —
	// the greeting never arrives while the probe is waiting.
	release := make(chan struct{})
	fnet := faultnet.New(1, faultnet.Plan{
		Write: faultnet.DirPlan{LatencyRate: 1, LatencyMin: time.Millisecond, LatencyMax: time.Millisecond},
	}, faultnet.WithSleep(func(time.Duration) { <-release }))
	srv, err := smtpd.NewServer(smtpd.Config{Deliver: func(*smtpd.Envelope) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := fnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(context.Background(), ln) }()
	defer func() { close(release); srv.Close(); <-done }()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Per-attempt Timeout is generous; the ctx budget must win. Before
	// the fix, the conn deadline was a fresh now+5s that ignored ctx.
	got := ProbeAddr(ctx, ln.Addr().String(), "loris.test", 5*time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("probe ran %v, want cutoff near the 150ms ctx budget", elapsed)
	}
	if got != ecosys.SupportNoEmail {
		t.Errorf("stalled probe = %v, want SupportNoEmail", got)
	}
}
