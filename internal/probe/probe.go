// Package probe reproduces the SMTP-support measurement of Section 5.1:
// given a candidate typo domain, resolve where its mail goes (MX, falling
// back to A per RFC 5321), check whether scan data exists for that
// address, and classify the host into Table 4's six categories by
// speaking SMTP to it — including whether STARTTLS is advertised and
// whether the TLS handshake actually succeeds.
//
// Two modes share the classification logic: ProbeAddr drives a live TCP
// SMTP server (used in integration tests and the collector tool), and
// Scan walks the simulated ecosystem through the same decision tree via
// connectivity primitives.
package probe

import (
	"bufio"
	"context"
	"crypto/tls"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/ecosys"
	"repro/internal/par"
)

// Result is one probed domain.
type Result struct {
	Domain  string
	Support ecosys.SMTPSupport
}

// ---------------------------------------------------------------------
// Live probing over TCP

// AddrProber classifies live SMTP endpoints. The zero value probes once
// with a 5s budget over net.Dialer; the fields expose the fault-injection
// and retry seams the chaos harness drives.
type AddrProber struct {
	// Timeout bounds one whole probe attempt — dial, transcript, and TLS
	// handshake share a single deadline, clipped to ctx's own deadline so
	// the caller's remaining budget is authoritative. Default 5s.
	Timeout time.Duration
	// Dialer intercepts dialing; nil uses net.Dialer.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// Retries is how many extra attempts follow a network-level failure
	// (dial error, dead connection before the greeting). Protocol-level
	// outcomes are answers, not failures, and never retry.
	Retries int
	// BaseDelay seeds the capped exponential backoff between attempts
	// (BaseDelay, 2×, 4×, … capped at MaxDelay). <=0 means 200ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <=0 means 5s.
	MaxDelay time.Duration
	// Jitter in [0,1] adds up to that fraction of each delay, drawn from
	// a PRNG seeded by Seed for exact replay.
	Jitter float64
	Seed   int64
	// Sleep substitutes the backoff wait; nil waits on the real clock.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Probe classifies addr, retrying network-level failures per the
// prober's budget.
func (p *AddrProber) Probe(ctx context.Context, addr, serverName string) ecosys.SMTPSupport {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	attempts := p.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	rng := par.Rand(p.Seed, 0)
	support, netFail := p.probeOnce(ctx, addr, serverName, timeout)
	for i := 1; i < attempts && netFail && ctx.Err() == nil; i++ {
		if sleep(ctx, p.backoff(i, rng)) != nil {
			break
		}
		support, netFail = p.probeOnce(ctx, addr, serverName, timeout)
	}
	return support
}

func (p *AddrProber) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxd {
			d = maxd
			break
		}
	}
	if d > maxd {
		d = maxd
	}
	if p.Jitter > 0 {
		d += time.Duration(p.Jitter * float64(d) * rng.Float64())
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// probeOnce runs one attempt. netFail reports a network-level failure
// (nothing learned about the service) as opposed to a protocol-level
// answer, which is final.
func (p *AddrProber) probeOnce(ctx context.Context, addr, serverName string, timeout time.Duration) (_ ecosys.SMTPSupport, netFail bool) {
	// One deadline covers the whole attempt, derived from the remaining
	// ctx budget — a slow-loris peer cannot stretch the session by
	// answering each step slowly, because nothing ever renews it.
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	dial := p.Dialer
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	conn, err := dial(dctx, "tcp", addr)
	if err != nil {
		return ecosys.SupportNoEmail, true
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	r := bufio.NewReader(conn)

	readReply := func() (int, []string, error) {
		var lines []string
		for {
			raw, err := r.ReadString('\n')
			if err != nil {
				return 0, nil, err
			}
			raw = strings.TrimRight(raw, "\r\n")
			if len(raw) < 4 {
				return 0, nil, fmt.Errorf("short reply %q", raw)
			}
			var code int
			if _, err := fmt.Sscanf(raw[:3], "%d", &code); err != nil {
				return 0, nil, err
			}
			lines = append(lines, raw[4:])
			if raw[3] == ' ' {
				return code, lines, nil
			}
		}
	}

	code, _, err := readReply()
	if err != nil || code != 220 {
		// A dead connection before any greeting is a network failure worth
		// retrying; a non-220 greeting is the service's answer.
		return ecosys.SupportNoEmail, err != nil
	}
	if _, err := fmt.Fprintf(conn, "EHLO probe.invalid\r\n"); err != nil {
		return ecosys.SupportNoEmail, false
	}
	code, exts, err := readReply()
	if err != nil || code != 250 {
		return ecosys.SupportNoEmail, false
	}
	hasTLS := false
	for _, e := range exts {
		if strings.HasPrefix(strings.ToUpper(e), "STARTTLS") {
			hasTLS = true
		}
	}
	if !hasTLS {
		return ecosys.SupportPlain, false
	}
	if _, err := fmt.Fprintf(conn, "STARTTLS\r\n"); err != nil {
		return ecosys.SupportTLSErrors, false
	}
	code, _, err = readReply()
	if err != nil || code != 220 {
		return ecosys.SupportTLSErrors, false
	}
	// Strict verification first: a presentable certificate chain and
	// matching name means "STARTTLS without errors". The handshake runs
	// under the same attempt-wide deadline as everything else.
	tconn := tls.Client(conn, &tls.Config{ServerName: serverName})
	hctx, hcancel := context.WithDeadline(ctx, deadline)
	defer hcancel()
	if err := tconn.HandshakeContext(hctx); err != nil {
		return ecosys.SupportTLSErrors, false
	}
	return ecosys.SupportTLSOK, false
}

// ProbeAddr classifies a live SMTP endpoint with a single attempt. It
// connects, reads the greeting, sends EHLO, and — when STARTTLS is
// advertised — attempts the handshake to distinguish "STARTTLS with
// errors" from "without errors". Certificate verification failures count
// as errors (typo domains overwhelmingly present self-signed or
// mismatched certificates).
func ProbeAddr(ctx context.Context, addr, serverName string, timeout time.Duration) ecosys.SMTPSupport {
	p := AddrProber{Timeout: timeout}
	return p.Probe(ctx, addr, serverName)
}

// ---------------------------------------------------------------------
// Ecosystem-scale scanning

// Net is the connectivity view the scanner walks: the same decision tree
// as ProbeAddr, over primitives instead of sockets. The simulated
// ecosystem implements it; a live deployment would back it with resolve
// and TCP dials.
type Net interface {
	// MailRoute resolves where domain's mail goes: explicit MX hosts, or
	// the domain itself when only an A record exists. ok=false means no
	// MX or A record at all.
	MailRoute(domain string) (hosts []string, ok bool)
	// ScanData reports whether the scan snapshot has data for the
	// address domain's mail lands on (zmap's coverage is incomplete;
	// "No info" in Table 4). Keyed by domain and host because one MX
	// name fronts many addresses.
	ScanData(domain, host string) bool
	// SMTPStatus reports the mail service at domain's delivery address:
	// listening, whether STARTTLS is advertised, and whether the
	// handshake completes cleanly.
	SMTPStatus(domain, host string) (listening, starttls, tlsClean bool)
}

// Scan classifies every domain through net's primitives. It stops
// early when ctx is cancelled; domains not reached are simply absent
// from the result.
func Scan(ctx context.Context, domains []string, n Net) []Result {
	out := make([]Result, 0, len(domains))
	for _, d := range domains {
		if ctx.Err() != nil {
			break
		}
		out = append(out, Result{Domain: d, Support: classify(d, n)})
	}
	return out
}

// ScanParallel classifies every domain like Scan, fanning the work out
// across a fixed pool of workers — the paper probed hundreds of
// thousands of candidate domains, far too many for a sequential walk
// against real network latencies. workers <= 0 selects a default pool.
// Results come back in input order regardless of completion order.
func ScanParallel(ctx context.Context, domains []string, n Net, workers int) []Result {
	if workers <= 0 {
		workers = 16
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	out := make([]Result, len(domains))
	if len(domains) == 0 {
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = Result{Domain: domains[i], Support: classify(domains[i], n)}
			}
		}()
	}
feed:
	for i := range domains {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Stop feeding; workers drain in-flight domains and exit.
			// Unprobed slots stay zero-valued, recognizable by Domain "".
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out
}

func classify(domain string, n Net) ecosys.SMTPSupport {
	hosts, ok := n.MailRoute(domain)
	if !ok || len(hosts) == 0 {
		return ecosys.SupportNoRecords
	}
	host := hosts[0]
	if !n.ScanData(domain, host) {
		return ecosys.SupportNoInfo
	}
	listening, starttls, clean := n.SMTPStatus(domain, host)
	switch {
	case !listening:
		return ecosys.SupportNoEmail
	case !starttls:
		return ecosys.SupportPlain
	case !clean:
		return ecosys.SupportTLSErrors
	default:
		return ecosys.SupportTLSOK
	}
}

// EcoNet adapts a generated ecosystem to the Net interface, deriving the
// primitives from each domain's configuration.
type EcoNet struct {
	Eco *ecosys.Ecosystem
}

// MailRoute implements Net.
func (en *EcoNet) MailRoute(domain string) ([]string, bool) {
	info, ok := en.Eco.Domains[domain]
	if !ok {
		return nil, false
	}
	if len(info.MX) > 0 {
		return info.MX, true
	}
	if info.HasA {
		return []string{domain}, true // RFC 5321 implicit MX
	}
	return nil, false
}

// ScanData implements Net: the snapshot is missing exactly for the
// addresses the ecosystem marked SupportNoInfo.
func (en *EcoNet) ScanData(domain, host string) bool {
	info, ok := en.Eco.Domains[domain]
	if !ok {
		return false
	}
	return info.Support != ecosys.SupportNoInfo
}

// SMTPStatus implements Net.
func (en *EcoNet) SMTPStatus(domain, host string) (bool, bool, bool) {
	info, ok := en.Eco.Domains[domain]
	if !ok {
		return false, false, false
	}
	switch info.Support {
	case ecosys.SupportPlain:
		return true, false, false
	case ecosys.SupportTLSErrors:
		return true, true, false
	case ecosys.SupportTLSOK:
		return true, true, true
	default:
		return false, false, false
	}
}

var _ Net = (*EcoNet)(nil)

// Table4 tallies scan results into the Table 4 row counts.
func Table4(results []Result) map[ecosys.SMTPSupport]int {
	m := make(map[ecosys.SMTPSupport]int)
	for _, r := range results {
		m[r.Support]++
	}
	return m
}
