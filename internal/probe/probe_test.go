package probe

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ecosys"
	"repro/internal/smtpd"
)

func startSMTP(t *testing.T, cfg smtpd.Config) (string, func()) {
	t.Helper()
	if cfg.Deliver == nil {
		cfg.Deliver = func(*smtpd.Envelope) error { return nil }
	}
	srv, err := smtpd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan net.Addr, 1)
	done := make(chan struct{})
	go func() { defer close(done); srv.ListenAndServe(ctx, "127.0.0.1:0", bound) }()
	addr := (<-bound).String()
	return addr, func() { cancel(); srv.Close(); <-done }
}

func TestProbeAddrPlainSMTP(t *testing.T) {
	addr, stop := startSMTP(t, smtpd.Config{Hostname: "plain.test"})
	defer stop()
	got := ProbeAddr(context.Background(), addr, "plain.test", 2*time.Second)
	if got != ecosys.SupportPlain {
		t.Errorf("plain server = %v, want SupportPlain", got)
	}
}

func TestProbeAddrSelfSignedTLSErrors(t *testing.T) {
	tlsCfg, err := smtpd.SelfSignedTLS("typo.test")
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startSMTP(t, smtpd.Config{Hostname: "typo.test", TLS: tlsCfg})
	defer stop()
	// Self-signed certificate: STARTTLS is advertised and the handshake
	// starts, but verification fails — the dominant Table 4 error class.
	got := ProbeAddr(context.Background(), addr, "typo.test", 2*time.Second)
	if got != ecosys.SupportTLSErrors {
		t.Errorf("self-signed server = %v, want SupportTLSErrors", got)
	}
}

func TestProbeAddrNoListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	got := ProbeAddr(context.Background(), addr, "gone.test", 500*time.Millisecond)
	if got != ecosys.SupportNoEmail {
		t.Errorf("closed port = %v, want SupportNoEmail", got)
	}
}

func TestProbeAddrStallingServer(t *testing.T) {
	addr, stop := startSMTP(t, smtpd.Config{
		Behavior: func(string) smtpd.ConnAction { return smtpd.ActStall },
	})
	defer stop()
	got := ProbeAddr(context.Background(), addr, "stall.test", 300*time.Millisecond)
	if got != ecosys.SupportNoEmail {
		t.Errorf("stalling server = %v, want SupportNoEmail", got)
	}
}

// fakeNet scripts the primitives for decision-tree tests.
type fakeNet struct {
	route map[string][]string
	scan  map[string]bool
	smtp  map[string][3]bool
}

func (f *fakeNet) MailRoute(d string) ([]string, bool) {
	h, ok := f.route[d]
	return h, ok
}
func (f *fakeNet) ScanData(d, h string) bool { return f.scan[d] }
func (f *fakeNet) SMTPStatus(d, h string) (bool, bool, bool) {
	s := f.smtp[d]
	return s[0], s[1], s[2]
}

func TestClassifyDecisionTree(t *testing.T) {
	n := &fakeNet{
		route: map[string][]string{
			"noinfo.com":  {"mx.noinfo.com"},
			"noemail.com": {"mx.noemail.com"},
			"plain.com":   {"mx.plain.com"},
			"tlserr.com":  {"mx.tlserr.com"},
			"tlsok.com":   {"mx.tlsok.com"},
		},
		scan: map[string]bool{
			"noemail.com": true, "plain.com": true, "tlserr.com": true, "tlsok.com": true,
		},
		smtp: map[string][3]bool{
			"noemail.com": {false, false, false},
			"plain.com":   {true, false, false},
			"tlserr.com":  {true, true, false},
			"tlsok.com":   {true, true, true},
		},
	}
	want := map[string]ecosys.SMTPSupport{
		"norecords.com": ecosys.SupportNoRecords,
		"noinfo.com":    ecosys.SupportNoInfo,
		"noemail.com":   ecosys.SupportNoEmail,
		"plain.com":     ecosys.SupportPlain,
		"tlserr.com":    ecosys.SupportTLSErrors,
		"tlsok.com":     ecosys.SupportTLSOK,
	}
	var domains []string
	for d := range want {
		domains = append(domains, d)
	}
	for _, r := range Scan(context.Background(), domains, n) {
		if r.Support != want[r.Domain] {
			t.Errorf("%s = %v, want %v", r.Domain, r.Support, want[r.Domain])
		}
	}
}

func TestEcoNetScanMatchesGroundTruth(t *testing.T) {
	eco := ecosys.Generate(ecosys.Config{
		Targets: 60, UniverseSize: 600, Seed: 3, BulkSquatters: 6, SharedMailHosts: 5,
	})
	var domains []string
	truth := map[string]ecosys.SMTPSupport{}
	for _, d := range eco.Ctypos() {
		domains = append(domains, d.Name)
		truth[d.Name] = d.Support
	}
	results := Scan(context.Background(), domains, &EcoNet{Eco: eco})
	if len(results) != len(domains) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Support != truth[r.Domain] {
			t.Errorf("%s probed %v, ground truth %v", r.Domain, r.Support, truth[r.Domain])
		}
	}
	table := Table4(results)
	total := 0
	for _, n := range table {
		total += n
	}
	if total != len(domains) {
		t.Errorf("Table4 total = %d, want %d", total, len(domains))
	}
}
