// Package vault is the study's hardened storage layer (Section 4.1):
// every collected email part (header, body, attachments) is encrypted
// before it touches disk, with the key kept separately from the server —
// "accidental disclosure of the contents of the server would need to be
// accompanied by a leakage of our encryption key."
//
// Encryption is AES-256-GCM with a per-record random nonce; records are
// integrity-protected, so tampering with stored evidence is detectable.
// Metadata (counts, timestamps, verdicts) stays in clear logs, mirroring
// the paper's "save header information ... and most of the log files"
// split.
package vault

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Errors returned by the vault.
var (
	ErrNotFound  = errors.New("vault: record not found")
	ErrBadKey    = errors.New("vault: wrong key or corrupt record")
	ErrKeyLength = errors.New("vault: key must be 32 bytes")
	ErrClosed    = errors.New("vault: closed")
)

// Key is the removable-storage encryption key.
type Key [32]byte

// DeriveKey stretches a passphrase into a Key. A real deployment would
// use a slow KDF; the derivation is deliberately deterministic so tests
// and reruns agree.
func DeriveKey(passphrase string) Key {
	return sha256.Sum256([]byte("email-typo-vault-v1|" + passphrase))
}

// Record is one stored, encrypted email.
type Record struct {
	ID       uint64
	Domain   string    // which typo domain received it
	Verdict  string    // funnel verdict at storage time
	Received time.Time // clear metadata

	nonce      []byte
	ciphertext []byte
}

// Vault is an append-only encrypted store. It follows the vault
// lifecycle protocol (see Store): after Close the key is unmounted and
// every operation but another Close is a vaultstate finding.
type Vault struct {
	aead cipher.AEAD

	mu      sync.RWMutex
	records map[uint64]*Record
	nextID  uint64
	closed  bool

	// Entropy source; overridable for deterministic tests.
	randRead func([]byte) (int, error)
}

// Open creates a Vault sealed with key.
func Open(key Key) (*Vault, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("vault: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("vault: gcm: %w", err)
	}
	return &Vault{
		aead:     aead,
		records:  make(map[uint64]*Record),
		nextID:   1,
		randRead: rand.Read,
	}, nil
}

// Put encrypts and stores plaintext with its clear metadata, returning
// the record ID.
func (v *Vault) Put(domain, verdict string, received time.Time, plaintext []byte) (uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, ErrClosed
	}
	nonce := make([]byte, v.aead.NonceSize())
	if _, err := v.randRead(nonce); err != nil {
		return 0, fmt.Errorf("vault: nonce: %w", err)
	}
	id := v.nextID
	v.nextID++
	// Bind the ID and domain into the AEAD additional data so records
	// cannot be swapped around undetected.
	ct := v.aead.Seal(nil, nonce, plaintext, aad(id, domain))
	v.records[id] = &Record{
		ID: id, Domain: domain, Verdict: verdict, Received: received,
		nonce: nonce, ciphertext: ct,
	}
	return id, nil
}

// Get decrypts record id.
func (v *Vault) Get(id uint64) ([]byte, *Record, error) {
	v.mu.RLock()
	closed, aead := v.closed, v.aead
	rec, ok := v.records[id]
	v.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	if !ok {
		return nil, nil, ErrNotFound
	}
	pt, err := aead.Open(nil, rec.nonce, rec.ciphertext, aad(id, rec.Domain))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	return pt, rec, nil
}

// Close seals the handle. The paper keeps the encryption key on
// removable storage mounted only while the collector runs (Section 4.1);
// closing models unmounting it: the AEAD becomes unreachable and further
// Put/Get calls fail with ErrClosed. Clear metadata (Len, Meta, Export
// of sealed records) stays readable, mirroring the paper's split between
// encrypted content and analyzable logs. Close is idempotent.
func (v *Vault) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	v.aead = nil
	return nil
}

// Len returns the number of stored records.
func (v *Vault) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.records)
}

// Meta returns the clear metadata of every record, in ID order — what an
// analyst can see without the key.
func (v *Vault) Meta() []Record {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Record, 0, len(v.records))
	for id := uint64(1); id < v.nextID; id++ {
		if rec, ok := v.records[id]; ok {
			out = append(out, Record{ID: rec.ID, Domain: rec.Domain, Verdict: rec.Verdict, Received: rec.Received})
		}
	}
	return out
}

// Surrender deletes every record of a domain — the paper's commitment to
// hand over infringing domains (and destroy their data) on request.
func (v *Vault) Surrender(domain string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for id, rec := range v.records {
		if rec.Domain == domain {
			delete(v.records, id)
			n++
		}
	}
	return n
}

// Export serializes the encrypted records (never plaintext) to w, for
// off-server backup. Format: count, then per record the clear metadata
// and the sealed payload.
func (v *Vault) Export(w io.Writer) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if err := binary.Write(w, binary.BigEndian, uint64(len(v.records))); err != nil {
		return err
	}
	for id := uint64(1); id < v.nextID; id++ {
		rec, ok := v.records[id]
		if !ok {
			continue
		}
		if err := writeExportRecord(w, rec, rec.nonce, rec.ciphertext); err != nil {
			return err
		}
	}
	return nil
}

// writeExportRecord writes one record in Export wire form — shared by
// the in-memory and log-structured backends so their snapshots are
// byte-identical for the same content.
func writeExportRecord(w io.Writer, rec *Record, nonce, ct []byte) error {
	write := func(data any) error { return binary.Write(w, binary.BigEndian, data) }
	writeBytes := func(b []byte) error {
		if err := write(uint32(len(b))); err != nil {
			return err
		}
		_, err := w.Write(b)
		return err
	}
	if err := write(rec.ID); err != nil {
		return err
	}
	if err := writeBytes([]byte(rec.Domain)); err != nil {
		return err
	}
	if err := writeBytes([]byte(rec.Verdict)); err != nil {
		return err
	}
	if err := write(rec.Received.UnixNano()); err != nil {
		return err
	}
	if err := writeBytes(nonce); err != nil {
		return err
	}
	return writeBytes(ct)
}

// Import loads an Export stream into a fresh vault sealed with key.
// Records stay encrypted; a wrong key only surfaces at Get time, exactly
// like the paper's threat model.
func Import(key Key, r io.Reader) (*Vault, error) {
	v, err := Open(key)
	if err != nil {
		return nil, err
	}
	// A truncated or corrupt stream bails out mid-import; the handle must
	// be sealed again on those paths, not abandoned open.
	imported := false
	defer func() {
		if !imported {
			v.Close()
		}
	}()
	err = decodeExportStream(r, func(rec Record) error {
		stored := rec
		v.records[stored.ID] = &stored
		if stored.ID >= v.nextID {
			v.nextID = stored.ID + 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	imported = true
	return v, nil
}

// decodeExportStream parses an Export stream, invoking emit once per
// record (with nonce and ciphertext populated) — shared by Import and
// the log-structured RestoreLog.
func decodeExportStream(r io.Reader, emit func(rec Record) error) error {
	read := func(data any) error { return binary.Read(r, binary.BigEndian, data) }
	readBytes := func() ([]byte, error) {
		var n uint32
		if err := read(&n); err != nil {
			return nil, err
		}
		if n > 64<<20 {
			return nil, fmt.Errorf("vault: absurd field size %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	var count uint64
	if err := read(&count); err != nil {
		return fmt.Errorf("vault: import header: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		var rec Record
		if err := read(&rec.ID); err != nil {
			return fmt.Errorf("vault: import record %d: %w", i, err)
		}
		domain, err := readBytes()
		if err != nil {
			return err
		}
		verdict, err := readBytes()
		if err != nil {
			return err
		}
		var ns int64
		if err := read(&ns); err != nil {
			return err
		}
		nonce, err := readBytes()
		if err != nil {
			return err
		}
		ct, err := readBytes()
		if err != nil {
			return err
		}
		rec.Domain, rec.Verdict = string(domain), string(verdict)
		rec.Received = time.Unix(0, ns).UTC()
		rec.nonce, rec.ciphertext = nonce, ct
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

func aad(id uint64, domain string) []byte {
	b := make([]byte, 8+len(domain))
	binary.BigEndian.PutUint64(b, id)
	copy(b[8:], domain)
	return b
}
