package vault

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seqRand is a deterministic entropy source: byte i of the stream is
// a keyed counter, so nonces (and therefore ciphertext and segment
// bytes) are reproducible across runs and across backends.
func seqRand() func([]byte) (int, error) {
	ctr := byte(0)
	return func(b []byte) (int, error) {
		for i := range b {
			b[i] = ctr
			ctr++
		}
		return len(b), nil
	}
}

func openLogT(t *testing.T, dir string, opts LogOptions) *LogVault {
	t.Helper()
	v, err := OpenLog(DeriveKey("log-pass"), dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return v
}

// fillPair drives the same put sequence into both backends with the
// same entropy stream.
func fillPair(t *testing.T, lv *LogVault, mv *Vault, n int) {
	t.Helper()
	lv.randRead = seqRand()
	mv.randRead = seqRand()
	when := time.Date(2016, 6, 4, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("dom%d.example", i%7)
		pt := []byte(fmt.Sprintf("record %d body *_|R|_* redacted", i))
		idL, errL := lv.Put(domain, "receiver-typo", when.Add(time.Duration(i)*time.Minute), pt)
		idM, errM := mv.Put(domain, "receiver-typo", when.Add(time.Duration(i)*time.Minute), pt)
		if errL != nil || errM != nil {
			t.Fatalf("put %d: log=%v mem=%v", i, errL, errM)
		}
		if idL != idM {
			t.Fatalf("put %d: id diverged log=%d mem=%d", i, idL, idM)
		}
	}
}

// sameMeta compares the clear-metadata fields of two records.
func sameMeta(a, b Record) bool {
	return a.ID == b.ID && a.Domain == b.Domain && a.Verdict == b.Verdict && a.Received.Equal(b.Received)
}

// exportString renders a store's Export bytes, for byte-level diffs.
func exportString(t *testing.T, s Store) string {
	t.Helper()
	var b bytes.Buffer
	if err := s.Export(&b); err != nil {
		t.Fatalf("Export: %v", err)
	}
	return hex.EncodeToString(b.Bytes())
}

// TestLogDifferentialOracle is the backbone: the same call sequence
// against LogVault and the in-memory oracle must yield identical IDs,
// metadata, plaintexts and byte-identical Export streams — through
// rotation, surrender and compaction.
func TestLogDifferentialOracle(t *testing.T) {
	lv := openLogT(t, t.TempDir(), LogOptions{Shards: 3, MaxSegmentBytes: 512})
	defer lv.Close()
	mv, err := Open(DeriveKey("log-pass"))
	if err != nil {
		t.Fatal(err)
	}
	defer mv.Close()

	fillPair(t, lv, mv, 60)
	if st := lv.Stats(); st.Segments <= 3 {
		t.Fatalf("MaxSegmentBytes=512 over 60 records should have rotated; segments=%d", st.Segments)
	}
	check := func(stage string) {
		t.Helper()
		if lv.Len() != mv.Len() {
			t.Fatalf("%s: Len log=%d mem=%d", stage, lv.Len(), mv.Len())
		}
		lm, mm := lv.Meta(), mv.Meta()
		for i := range lm {
			if !sameMeta(lm[i], mm[i]) {
				t.Fatalf("%s: Meta[%d] log=%+v mem=%+v", stage, i, lm[i], mm[i])
			}
		}
		for _, rec := range lm {
			ptL, _, errL := lv.Get(rec.ID)
			ptM, _, errM := mv.Get(rec.ID)
			if errL != nil || errM != nil {
				t.Fatalf("%s: Get(%d) log=%v mem=%v", stage, rec.ID, errL, errM)
			}
			if !bytes.Equal(ptL, ptM) {
				t.Fatalf("%s: Get(%d) plaintext diverged", stage, rec.ID)
			}
		}
		if el, em := exportString(t, lv), exportString(t, mv); el != em {
			t.Fatalf("%s: Export bytes diverged", stage)
		}
	}
	check("after fill")

	if nl, nm := lv.Surrender("dom3.example"), mv.Surrender("dom3.example"); nl != nm || nl == 0 {
		t.Fatalf("Surrender log=%d mem=%d", nl, nm)
	}
	check("after surrender")

	if err := lv.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := lv.Stats(); st.Compactions < 1 || st.DeadBytes != 0 {
		t.Fatalf("compaction stats: %+v", st)
	}
	check("after compaction")
}

// TestLogCrashReplay abandons a LogVault without Close (the crash
// model: every completed Put is a full frame on disk) and reopens the
// directory: no record may be lost, and new puts must not reuse IDs.
func TestLogCrashReplay(t *testing.T) {
	dir := t.TempDir()
	v1 := openLogT(t, dir, LogOptions{Shards: 2, MaxSegmentBytes: 256})
	v1.randRead = seqRand()
	when := time.Unix(0, 1465041600e9).UTC()
	want := map[uint64]string{}
	for i := 0; i < 25; i++ {
		pt := fmt.Sprintf("crash-record-%d", i)
		id, err := v1.Put(fmt.Sprintf("d%d.example", i%3), "receiver-typo", when, []byte(pt))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = pt
	}
	v1.Surrender("d1.example")
	for id := range want {
		if _, _, err := v1.Get(id); err != nil {
			delete(want, id)
		}
	}
	// No Close: the handle is simply abandoned, as a crash would.

	v2 := openLogT(t, dir, LogOptions{Shards: 2, MaxSegmentBytes: 256})
	defer v2.Close()
	if v2.Len() != len(want) {
		t.Fatalf("replayed %d records, want %d", v2.Len(), len(want))
	}
	for id, pt := range want {
		got, rec, err := v2.Get(id)
		if err != nil || string(got) != pt {
			t.Fatalf("Get(%d) after replay: %q %v", id, got, err)
		}
		if rec.ID != id {
			t.Fatalf("record id mismatch: %d vs %d", rec.ID, id)
		}
	}
	// IDs keep climbing from the replayed high-water mark.
	id, err := v2.Put("d0.example", "receiver-typo", when, []byte("after-replay"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 26 {
		t.Fatalf("post-replay id = %d, want 26", id)
	}
}

// TestLogTornFrameTruncated simulates a crash mid-append: a partial
// frame at the tail of the active segment is truncated away on reopen
// and every complete record survives.
func TestLogTornFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	v1 := openLogT(t, dir, LogOptions{Shards: 1})
	v1.randRead = seqRand()
	when := time.Unix(0, 1465041600e9).UTC()
	for i := 0; i < 5; i++ {
		if _, err := v1.Put("torn.example", "receiver-typo", when, []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v1.Close()

	path := segPath(dir, 0, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising more payload than exists = torn write.
	if _, err := f.Write([]byte{framePut, 0, 0, 1, 0, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	v2 := openLogT(t, dir, LogOptions{Shards: 1})
	defer v2.Close()
	if v2.Len() != 5 {
		t.Fatalf("after torn-frame replay Len=%d, want 5", v2.Len())
	}
	if _, err := v2.Put("torn.example", "receiver-typo", when, []byte("rec5")); err != nil {
		t.Fatalf("put after truncation: %v", err)
	}
	if v2.Len() != 6 {
		t.Fatalf("Len=%d after post-truncation put", v2.Len())
	}
}

// TestLogGoldenSegmentBytes pins the segment wire format: with a fixed
// key and entropy stream, the bytes on disk are stable. A change to
// the format must consciously update this hash.
func TestLogGoldenSegmentBytes(t *testing.T) {
	dir := t.TempDir()
	v := openLogT(t, dir, LogOptions{Shards: 2})
	v.randRead = seqRand()
	when := time.Unix(0, 1465041600e9).UTC()
	for i := 0; i < 4; i++ {
		if _, err := v.Put([]string{"a.example", "b.example"}[i%2], "receiver-typo",
			when.Add(time.Duration(i)*time.Hour), []byte(fmt.Sprintf("golden %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v.Close()

	h := sha256.New()
	for shard := 0; shard < 2; shard++ {
		data, err := os.ReadFile(segPath(dir, shard, 1))
		if err != nil {
			t.Fatal(err)
		}
		h.Write(data)
	}
	const wantHash = "862085873d5bbf5e39eeeefeb4111f2d7c461970f18ac320cc057d1460b195e8"
	got := hex.EncodeToString(h.Sum(nil))
	if got != wantHash {
		t.Fatalf("segment bytes changed: sha256 = %s (update the golden value only for a deliberate format change)", got)
	}
}

// TestLogSnapshotRestore round-trips Export→RestoreLog and checks the
// restored vault serves identical data, then pins the Close semantics:
// data operations fail with ErrClosed while metadata stays readable.
func TestLogSnapshotRestore(t *testing.T) {
	v := openLogT(t, t.TempDir(), LogOptions{Shards: 2, MaxSegmentBytes: 300})
	defer v.Close()
	v.randRead = seqRand()
	when := time.Unix(0, 1465041600e9).UTC()
	for i := 0; i < 12; i++ {
		if _, err := v.Put(fmt.Sprintf("s%d.example", i%4), "receiver-typo", when, []byte(fmt.Sprintf("snap %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v.Surrender("s2.example")
	var snap bytes.Buffer
	if err := v.Export(&snap); err != nil {
		t.Fatal(err)
	}
	snapBytes := append([]byte(nil), snap.Bytes()...)

	r, err := RestoreLog(DeriveKey("log-pass"), t.TempDir(), LogOptions{Shards: 5, MaxSegmentBytes: 200}, &snap)
	if err != nil {
		t.Fatalf("RestoreLog: %v", err)
	}
	defer r.Close()
	if r.Len() != v.Len() {
		t.Fatalf("restored Len=%d want %d", r.Len(), v.Len())
	}
	vm, rm := v.Meta(), r.Meta()
	for i := range vm {
		if !sameMeta(vm[i], rm[i]) {
			t.Fatalf("restored Meta[%d] = %+v, want %+v", i, rm[i], vm[i])
		}
	}
	for _, rec := range vm {
		a, _, err1 := v.Get(rec.ID)
		b, _, err2 := r.Get(rec.ID)
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Fatalf("restored Get(%d) diverged: %v %v", rec.ID, err1, err2)
		}
	}
	// The restored vault's own snapshot is byte-identical to the source's.
	var again bytes.Buffer
	if err := r.Export(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), snapBytes) {
		t.Fatal("restore→Export is not the identity on snapshot bytes")
	}
	// Restoring into a dir that already holds segments must refuse.
	if _, err := RestoreLog(DeriveKey("log-pass"), r.dir, LogOptions{}, bytes.NewReader(snapBytes)); err == nil {
		t.Fatal("RestoreLog into a populated dir succeeded")
	}

	// Close-unmounts-key semantics on the restored handle.
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := r.Get(vm[0].ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if _, err := r.Put("x.example", "receiver-typo", when, []byte("no")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if err := r.Export(io.Discard); !errors.Is(err, ErrClosed) {
		t.Fatalf("Export after Close = %v, want ErrClosed", err)
	}
	if r.Len() != v.Len() || len(r.Meta()) != v.Len() {
		t.Fatal("metadata unreadable after Close")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestLogCompactionPreservesLiveSet: after heavy surrender churn,
// compaction must keep exactly the live record set (differential vs the
// in-memory oracle) and actually shrink the on-disk footprint.
func TestLogCompactionPreservesLiveSet(t *testing.T) {
	lv := openLogT(t, t.TempDir(), LogOptions{Shards: 2, MaxSegmentBytes: 400})
	defer lv.Close()
	mv, err := Open(DeriveKey("log-pass"))
	if err != nil {
		t.Fatal(err)
	}
	defer mv.Close()
	fillPair(t, lv, mv, 40)
	for _, d := range []string{"dom0.example", "dom2.example", "dom5.example"} {
		lv.Surrender(d)
		mv.Surrender(d)
	}
	before := lv.Stats()
	var sizeBefore int64
	filepath.WalkDir(lv.dir, func(_ string, d os.DirEntry, _ error) error {
		if d != nil && !d.IsDir() {
			if info, err := d.Info(); err == nil {
				sizeBefore += info.Size()
			}
		}
		return nil
	})
	if err := lv.Compact(); err != nil {
		t.Fatal(err)
	}
	var sizeAfter int64
	filepath.WalkDir(lv.dir, func(_ string, d os.DirEntry, _ error) error {
		if d != nil && !d.IsDir() {
			if info, err := d.Info(); err == nil {
				sizeAfter += info.Size()
			}
		}
		return nil
	})
	if sizeAfter >= sizeBefore {
		t.Fatalf("compaction did not shrink disk: %d -> %d (dead before: %d)", sizeBefore, sizeAfter, before.DeadBytes)
	}
	if el, em := exportString(t, lv), exportString(t, mv); el != em {
		t.Fatal("live set diverged from oracle after compaction")
	}
	// And the compacted directory still replays.
	lv.Close()
	v2 := openLogT(t, lv.dir, LogOptions{Shards: 2, MaxSegmentBytes: 400})
	defer v2.Close()
	if v2.Len() != mv.Len() {
		t.Fatalf("replay after compaction: Len=%d want %d", v2.Len(), mv.Len())
	}
}

// TestLogNoPlaintextOnDisk greps every segment byte for the stored
// plaintext — the §4.1 encrypted-at-rest guarantee, now on real files.
func TestLogNoPlaintextOnDisk(t *testing.T) {
	dir := t.TempDir()
	v := openLogT(t, dir, LogOptions{Shards: 1})
	secret := []byte("SSN 123-45-6789 and password hunter2")
	if _, err := v.Put("leak.example", "receiver-typo", time.Unix(0, 1465041600e9).UTC(), secret); err != nil {
		t.Fatal(err)
	}
	v.Close()
	data, err := os.ReadFile(segPath(dir, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range [][]byte{secret, []byte("hunter2"), []byte("123-45-6789")} {
		if bytes.Contains(data, needle) {
			t.Fatalf("plaintext %q found in segment file", needle)
		}
	}
	// Clear metadata IS on disk by design (the paper's split); verify the
	// frame still decodes to the right domain without the key.
	if !bytes.Contains(data, []byte("leak.example")) {
		t.Fatal("clear metadata missing from segment (format drift?)")
	}
}
