package vault

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 6, 10, 12, 0, 0, 0, time.UTC)

func TestPutGetRoundTrip(t *testing.T) {
	v, err := Open(DeriveKey("removable-usb-key"))
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("From: a@b.com\r\n\r\nsensitive body")
	id, err := v.Put("gmial.com", "receiver-typo", t0, plain)
	if err != nil {
		t.Fatal(err)
	}
	got, rec, err := v.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("plaintext = %q", got)
	}
	if rec.Domain != "gmial.com" || rec.Verdict != "receiver-typo" || !rec.Received.Equal(t0) {
		t.Errorf("metadata = %+v", rec)
	}
}

func TestCloseSealsHandle(t *testing.T) {
	v, err := Open(DeriveKey("k"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := v.Put("gmial.com", "receiver-typo", t0, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Put("d.com", "v", t0, []byte("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := v.Get(id); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close: err = %v, want ErrClosed", err)
	}
	// Clear metadata stays readable after the key is unmounted.
	if v.Len() != 1 {
		t.Errorf("Len after Close = %d, want 1", v.Len())
	}
	if meta := v.Meta(); len(meta) != 1 || meta[0].Domain != "gmial.com" {
		t.Errorf("Meta after Close = %+v", meta)
	}
	if err := v.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	v, _ := Open(DeriveKey("k"))
	secret := []byte("the visa document contents")
	id, _ := v.Put("d.com", "v", t0, secret)
	v.mu.RLock()
	rec := v.records[id]
	v.mu.RUnlock()
	if bytes.Contains(rec.ciphertext, []byte("visa")) {
		t.Error("plaintext fragment visible in ciphertext")
	}
	if len(rec.ciphertext) <= len(secret) {
		t.Error("ciphertext missing auth tag")
	}
}

func TestWrongKeyFails(t *testing.T) {
	v, _ := Open(DeriveKey("right"))
	id, _ := v.Put("d.com", "v", t0, []byte("secret"))
	var buf bytes.Buffer
	if err := v.Export(&buf); err != nil {
		t.Fatal(err)
	}
	wrong, err := Import(DeriveKey("wrong"), &buf)
	if err != nil {
		t.Fatal(err) // import succeeds: key only checked on Get
	}
	if _, _, err := wrong.Get(id); !errors.Is(err, ErrBadKey) {
		t.Errorf("Get with wrong key = %v, want ErrBadKey", err)
	}
}

func TestTamperDetection(t *testing.T) {
	v, _ := Open(DeriveKey("k"))
	id, _ := v.Put("d.com", "v", t0, []byte("evidence"))
	v.mu.Lock()
	v.records[id].ciphertext[3] ^= 0xFF
	v.mu.Unlock()
	if _, _, err := v.Get(id); !errors.Is(err, ErrBadKey) {
		t.Errorf("tampered record = %v, want ErrBadKey", err)
	}
}

func TestRecordsNotSwappable(t *testing.T) {
	// AAD binds ID and domain: moving a ciphertext to another ID fails.
	v, _ := Open(DeriveKey("k"))
	id1, _ := v.Put("a.com", "v", t0, []byte("one"))
	id2, _ := v.Put("b.com", "v", t0, []byte("two"))
	v.mu.Lock()
	v.records[id1].ciphertext, v.records[id2].ciphertext = v.records[id2].ciphertext, v.records[id1].ciphertext
	v.records[id1].nonce, v.records[id2].nonce = v.records[id2].nonce, v.records[id1].nonce
	v.mu.Unlock()
	if _, _, err := v.Get(id1); !errors.Is(err, ErrBadKey) {
		t.Errorf("swapped record accepted: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	v, _ := Open(DeriveKey("k"))
	if _, _, err := v.Get(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestMetaNeverLeaksContent(t *testing.T) {
	v, _ := Open(DeriveKey("k"))
	v.Put("gmial.com", "spam:score", t0, []byte("secret-content"))
	v.Put("outlo0k.com", "receiver-typo", t0.Add(time.Hour), []byte("more-secret"))
	meta := v.Meta()
	if len(meta) != 2 {
		t.Fatalf("meta = %d records", len(meta))
	}
	for _, m := range meta {
		if m.ciphertext != nil || m.nonce != nil {
			t.Error("Meta exposed sealed fields")
		}
	}
	if meta[0].ID != 1 || meta[1].ID != 2 {
		t.Error("meta not in ID order")
	}
}

func TestSurrender(t *testing.T) {
	v, _ := Open(DeriveKey("k"))
	v.Put("gmial.com", "v", t0, []byte("1"))
	v.Put("gmial.com", "v", t0, []byte("2"))
	id3, _ := v.Put("outlo0k.com", "v", t0, []byte("3"))
	if n := v.Surrender("gmial.com"); n != 2 {
		t.Errorf("Surrender = %d, want 2", n)
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
	if _, _, err := v.Get(id3); err != nil {
		t.Errorf("unrelated record lost: %v", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	key := DeriveKey("shared")
	v, _ := Open(key)
	ids := make([]uint64, 0, 5)
	for i := 0; i < 5; i++ {
		id, _ := v.Put("gmial.com", "receiver-typo", t0.Add(time.Duration(i)*time.Hour), []byte{byte(i), 0xAA})
		ids = append(ids, id)
	}
	v.Surrender("") // no-op
	var buf bytes.Buffer
	if err := v.Export(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := Import(key, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 5 {
		t.Fatalf("imported = %d", v2.Len())
	}
	for i, id := range ids {
		pt, rec, err := v2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if pt[0] != byte(i) || rec.Domain != "gmial.com" {
			t.Errorf("record %d corrupted", id)
		}
	}
	// New puts continue after the max imported ID.
	id, _ := v2.Put("x.com", "v", t0, []byte("new"))
	if id != 6 {
		t.Errorf("next ID = %d, want 6", id)
	}
}

func TestImportGarbage(t *testing.T) {
	if _, err := Import(DeriveKey("k"), bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage import accepted")
	}
	// Absurd field size must be rejected, not allocated.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // one record
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // id
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // domain length: 4 GiB
	if _, err := Import(DeriveKey("k"), &buf); err == nil {
		t.Error("absurd field size accepted")
	}
}

func TestDeriveKeyStable(t *testing.T) {
	if DeriveKey("a") != DeriveKey("a") {
		t.Error("DeriveKey not deterministic")
	}
	if DeriveKey("a") == DeriveKey("b") {
		t.Error("distinct passphrases collide")
	}
}

// Property: every payload round-trips.
func TestRoundTripProperty(t *testing.T) {
	v, _ := Open(DeriveKey("prop"))
	f := func(payload []byte) bool {
		id, err := v.Put("d.com", "v", t0, payload)
		if err != nil {
			return false
		}
		got, _, err := v.Get(id)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
