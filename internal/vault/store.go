package vault

import (
	"io"
	"time"
)

// Store is the evidence-store contract the collection pipeline writes
// through: encrypted puts, sealed reads, clear metadata, per-domain
// surrender and encrypted export. Two implementations exist — the
// original in-memory Vault (the differential oracle) and the
// log-structured on-disk LogVault — and they are interchangeable:
// given the same key, nonce source and call sequence they produce the
// same IDs, the same metadata and byte-identical Export streams.
//
// Store values follow the vault lifecycle protocol: Put/Get/Export/
// Surrender only while open, Close idempotent, nothing after Close
// (repolint's vaultstate analyzer checks call sites against the
// declared state machine).
type Store interface {
	Put(domain, verdict string, received time.Time, plaintext []byte) (uint64, error)
	Get(id uint64) ([]byte, *Record, error)
	Len() int
	Meta() []Record
	Surrender(domain string) int
	Export(w io.Writer) error
	Close() error
}

var (
	_ Store = (*Vault)(nil)
	_ Store = (*LogVault)(nil)
)
