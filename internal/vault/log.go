// The log-structured on-disk backend: append-only segment files of
// length-prefixed encrypted records, sharded per domain, with inline
// compaction and Export/Restore snapshots. It keeps the package's §4.1
// contract intact — plaintext never touches disk (records are sealed
// with the same AES-256-GCM + AAD construction as the in-memory Vault),
// and Close models unmounting the removable key: the AEAD becomes
// unreachable, the segment handles are released, and only clear
// metadata stays readable.
//
// Determinism: given the same key, nonce source and call sequence, a
// LogVault assigns the same IDs and produces an Export stream
// byte-identical to the in-memory Vault's — the property the
// differential-oracle tests pin. Compaction is synchronous and happens
// inline on the calling goroutine (at segment rotation, or via
// Compact), never on a background goroutine: a concurrent compactor
// would make segment layout depend on scheduling, and the repository's
// replay-from-seed contract forbids that.
package vault

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LogOptions tunes the segment backend. The zero value gets sensible
// defaults; tests shrink MaxSegmentBytes to force rotation.
type LogOptions struct {
	// Shards is the number of per-domain shard logs (default 4). Each
	// domain's records land in hash(domain) mod Shards, so surrendering
	// a domain dirties one shard, not all of them.
	Shards int
	// MaxSegmentBytes rotates a shard's active segment once it grows
	// past this size (default 4 MiB).
	MaxSegmentBytes int64
	// CompactFraction triggers compaction at rotation when the shard's
	// dead bytes exceed this fraction of its total bytes (default 0.5).
	CompactFraction float64
}

func (o LogOptions) withDefaults() LogOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.5
	}
	return o
}

// Segment wire format. Each file starts with a 20-byte header (magic,
// shard index, segment sequence number), followed by frames of
// [1-byte type][u32 payload length][payload]. Put payloads reuse the
// Export field layout; a torn trailing frame (crash mid-append) is
// truncated away on reopen.
const (
	segMagic      = "VLTSEG1\n"
	segHeaderSize = len(segMagic) + 4 + 8

	framePut     = 'P' // one sealed record
	frameTomb    = 'T' // tombstone: the record id was surrendered
	frameNextID  = 'N' // id high-water mark (written by compaction/restore)
	frameHdrSize = 5
)

// logRecord is the in-memory index entry: clear metadata plus where the
// sealed payload lives on disk.
type logRecord struct {
	meta  Record
	shard int
	seg   uint64
	off   int64 // payload offset within the segment file
	size  int64 // payload length
}

// logShard is one shard's segment chain. files holds an open handle per
// segment (reads go through ReadAt; the active segment is appended to
// with WriteAt at the tracked size, so one handle serves both).
type logShard struct {
	id     int
	seq    uint64 // active segment sequence number
	active *os.File
	size   int64 // active segment size
	files  map[uint64]*os.File
	live   int64 // bytes of frames still reachable from the index
	dead   int64 // bytes of surrendered/compacted-away frames
}

// LogVault is the append-only segment-backed Store. It follows the
// vault lifecycle protocol (see Store): rotation and compaction are
// open-state operations, and after Close the segments are sealed —
// repolint's vaultstate analyzer enforces the ordering at call sites.
type LogVault struct {
	dir  string
	opts LogOptions

	mu          sync.RWMutex
	aead        cipher.AEAD
	idx         map[uint64]*logRecord
	nextID      uint64
	closed      bool
	shards      []*logShard
	compactions int

	// Entropy source; overridable for deterministic tests.
	randRead func([]byte) (int, error)
}

// newAEAD builds the package's AES-256-GCM sealer for key.
func newAEAD(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("vault: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("vault: gcm: %w", err)
	}
	return aead, nil
}

// OpenLog opens (or creates) a log-structured vault in dir, sealed with
// key. An existing directory is replayed: every segment's frames are
// re-indexed, tombstones are applied, and a torn trailing frame — the
// signature of a crash mid-append — is truncated away. Records written
// by a previous process are fully recovered; the key itself is never
// stored anywhere under dir.
func OpenLog(key Key, dir string, opts LogOptions) (*LogVault, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("vault: segment dir: %w", err)
	}
	v := &LogVault{
		dir:      dir,
		opts:     opts.withDefaults(),
		aead:     aead,
		idx:      make(map[uint64]*logRecord),
		nextID:   1,
		randRead: rand.Read,
	}
	if err := v.replay(); err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

func segPath(dir string, shard int, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard%d-%08d.seg", shard, seq))
}

// parseSegName inverts segPath's naming.
func parseSegName(name string) (shard int, seq uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "shard")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".seg")
	if !found {
		return 0, 0, false
	}
	si, srest, found := strings.Cut(rest, "-")
	if !found {
		return 0, 0, false
	}
	s, err1 := strconv.Atoi(si)
	q, err2 := strconv.ParseUint(srest, 10, 64)
	if err1 != nil || err2 != nil || s < 0 || q == 0 {
		return 0, 0, false
	}
	return s, q, true
}

// shardOf maps a domain to its shard by FNV-1a.
func shardOf(domain string, shards int) int {
	var h uint32 = 2166136261
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// replay scans dir, rebuilds the index and opens the shard chains.
func (v *LogVault) replay() error {
	entries, err := os.ReadDir(v.dir)
	if err != nil {
		return fmt.Errorf("vault: scanning segment dir: %w", err)
	}
	segs := map[int][]uint64{}
	shardCount := v.opts.Shards
	for _, e := range entries {
		s, q, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		segs[s] = append(segs[s], q)
		if s >= shardCount {
			shardCount = s + 1
		}
	}
	v.shards = make([]*logShard, shardCount)
	for i := range v.shards {
		v.shards[i] = &logShard{id: i, files: make(map[uint64]*os.File)}
	}

	// Tombstones are applied globally after all shards replay: within a
	// shard frames are ordered, and a shard-count change between runs
	// must still pair every tombstone with its put.
	tombs := map[uint64]bool{}
	maxID := uint64(0)
	for s := 0; s < shardCount; s++ {
		sh := v.shards[s]
		seqs := segs[s]
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for k, q := range seqs {
			last := k == len(seqs)-1
			size, err := v.replaySegment(sh, q, last, tombs, &maxID)
			if err != nil {
				return err
			}
			if last {
				sh.seq, sh.size = q, size
			}
		}
		if len(seqs) == 0 {
			if err := v.newSegment(sh, 1); err != nil {
				return err
			}
		} else {
			sh.active = sh.files[sh.seq]
		}
	}
	for id := range tombs {
		if lr, ok := v.idx[id]; ok {
			delete(v.idx, id)
			sh := v.shards[lr.shard]
			sh.live -= frameHdrSize + lr.size
			sh.dead += frameHdrSize + lr.size
		}
	}
	if maxID >= v.nextID {
		v.nextID = maxID + 1
	}
	return nil
}

// replaySegment reads one segment file, indexes its frames and opens a
// read/append handle for it. A parse failure in the final segment of a
// shard truncates the torn tail; anywhere else it is corruption.
func (v *LogVault) replaySegment(sh *logShard, seq uint64, last bool, tombs map[uint64]bool, maxID *uint64) (int64, error) {
	path := segPath(v.dir, sh.id, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("vault: reading segment: %w", err)
	}
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic ||
		binary.BigEndian.Uint32(data[len(segMagic):]) != uint32(sh.id) ||
		binary.BigEndian.Uint64(data[len(segMagic)+4:]) != seq {
		return 0, fmt.Errorf("vault: segment %s: bad header", filepath.Base(path))
	}
	off := int64(segHeaderSize)
	valid := off
	for int(off) < len(data) {
		typ, payload, next, ok := parseFrame(data, off)
		if !ok {
			break
		}
		switch typ {
		case framePut:
			var rec Record
			var nonce, ct []byte
			if rec, nonce, ct, err = decodePutPayload(payload); err != nil {
				return 0, fmt.Errorf("vault: segment %s: %w", filepath.Base(path), err)
			}
			_, _ = nonce, ct // stays on disk; the index keeps only clear metadata
			v.idx[rec.ID] = &logRecord{
				meta: rec, shard: sh.id, seg: seq,
				off: off + frameHdrSize, size: int64(len(payload)),
			}
			sh.live += frameHdrSize + int64(len(payload))
			if rec.ID > *maxID {
				*maxID = rec.ID
			}
		case frameTomb:
			if len(payload) != 8 {
				return 0, fmt.Errorf("vault: segment %s: bad tombstone", filepath.Base(path))
			}
			tombs[binary.BigEndian.Uint64(payload)] = true
			sh.dead += frameHdrSize + int64(len(payload))
		case frameNextID:
			if len(payload) != 8 {
				return 0, fmt.Errorf("vault: segment %s: bad id marker", filepath.Base(path))
			}
			if n := binary.BigEndian.Uint64(payload); n > *maxID+1 {
				*maxID = n - 1
			}
		default:
			return 0, fmt.Errorf("vault: segment %s: unknown frame type %q", filepath.Base(path), typ)
		}
		off = next
		valid = off
	}
	if int(valid) < len(data) {
		if !last {
			return 0, fmt.Errorf("vault: segment %s: torn frame in non-final segment", filepath.Base(path))
		}
		if err := os.Truncate(path, valid); err != nil {
			return 0, fmt.Errorf("vault: truncating torn segment: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return 0, fmt.Errorf("vault: opening segment: %w", err)
	}
	sh.files[seq] = f
	return valid, nil
}

// parseFrame reads one frame at off; ok is false on a torn tail.
func parseFrame(data []byte, off int64) (typ byte, payload []byte, next int64, ok bool) {
	if int64(len(data)) < off+frameHdrSize {
		return 0, nil, 0, false
	}
	typ = data[off]
	n := int64(binary.BigEndian.Uint32(data[off+1:]))
	if n > 64<<20 || int64(len(data)) < off+frameHdrSize+n {
		return 0, nil, 0, false
	}
	start := off + frameHdrSize
	return typ, data[start : start+n], start + n, true
}

// newSegment creates segment seq for sh and makes it active.
func (v *LogVault) newSegment(sh *logShard, seq uint64) error {
	f, err := os.OpenFile(segPath(v.dir, sh.id, seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("vault: creating segment: %w", err)
	}
	// Track the handle before anything fallible: Close owns it from here.
	sh.files[seq] = f
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(sh.id))
	hdr = binary.BigEndian.AppendUint64(hdr, seq)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("vault: segment header: %w", err)
	}
	sh.seq, sh.active, sh.size = seq, f, int64(segHeaderSize)
	return nil
}

// appendFrame writes one frame to sh's active segment and returns the
// payload offset.
func (sh *logShard) appendFrame(typ byte, payload []byte) (int64, error) {
	buf := make([]byte, 0, frameHdrSize+len(payload))
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	if _, err := sh.active.WriteAt(buf, sh.size); err != nil {
		return 0, fmt.Errorf("vault: segment append: %w", err)
	}
	off := sh.size + frameHdrSize
	sh.size += int64(len(buf))
	return off, nil
}

func encodePutPayload(rec Record, nonce, ct []byte) []byte {
	b := binary.BigEndian.AppendUint64(nil, rec.ID)
	b = appendPrefixed(b, []byte(rec.Domain))
	b = appendPrefixed(b, []byte(rec.Verdict))
	b = binary.BigEndian.AppendUint64(b, uint64(rec.Received.UnixNano()))
	b = appendPrefixed(b, nonce)
	b = appendPrefixed(b, ct)
	return b
}

func decodePutPayload(p []byte) (rec Record, nonce, ct []byte, err error) {
	bad := fmt.Errorf("vault: malformed record frame")
	if len(p) < 8 {
		return rec, nil, nil, bad
	}
	rec.ID, p = binary.BigEndian.Uint64(p), p[8:]
	var b []byte
	if b, p, err = cutPrefixed(p); err != nil {
		return rec, nil, nil, err
	}
	rec.Domain = string(b)
	if b, p, err = cutPrefixed(p); err != nil {
		return rec, nil, nil, err
	}
	rec.Verdict = string(b)
	if len(p) < 8 {
		return rec, nil, nil, bad
	}
	rec.Received = time.Unix(0, int64(binary.BigEndian.Uint64(p))).UTC()
	p = p[8:]
	if nonce, p, err = cutPrefixed(p); err != nil {
		return rec, nil, nil, err
	}
	if ct, p, err = cutPrefixed(p); err != nil {
		return rec, nil, nil, err
	}
	if len(p) != 0 {
		return rec, nil, nil, bad
	}
	return rec, nonce, ct, nil
}

func appendPrefixed(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func cutPrefixed(p []byte) ([]byte, []byte, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("vault: malformed record frame")
	}
	n := binary.BigEndian.Uint32(p)
	if n > 64<<20 || len(p) < 4+int(n) {
		return nil, nil, fmt.Errorf("vault: malformed record frame")
	}
	return p[4 : 4+n], p[4+int(n):], nil
}

// Put encrypts and appends plaintext to the domain's shard, returning
// the record ID. Semantics match the in-memory Vault exactly.
func (v *LogVault) Put(domain, verdict string, received time.Time, plaintext []byte) (uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, ErrClosed
	}
	nonce := make([]byte, v.aead.NonceSize())
	if _, err := v.randRead(nonce); err != nil {
		return 0, fmt.Errorf("vault: nonce: %w", err)
	}
	id := v.nextID
	ct := v.aead.Seal(nil, nonce, plaintext, aad(id, domain))
	rec := Record{ID: id, Domain: domain, Verdict: verdict, Received: received}
	sh := v.shards[shardOf(domain, len(v.shards))]
	payload := encodePutPayload(rec, nonce, ct)
	off, err := sh.appendFrame(framePut, payload)
	if err != nil {
		return 0, err
	}
	v.nextID++
	v.idx[id] = &logRecord{meta: rec, shard: sh.id, seg: sh.seq, off: off, size: int64(len(payload))}
	sh.live += frameHdrSize + int64(len(payload))
	if sh.size > v.opts.MaxSegmentBytes {
		if err := v.rotate(sh); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// rotate seals sh's active segment and opens the next one, compacting
// first when the shard has accumulated enough dead bytes.
func (v *LogVault) rotate(sh *logShard) error {
	if total := sh.live + sh.dead; sh.dead > 0 && float64(sh.dead) >= v.opts.CompactFraction*float64(total) {
		return v.compactShard(sh)
	}
	return v.newSegment(sh, sh.seq+1)
}

// compactShard rewrites sh's live records (in ID order) into a fresh
// segment and deletes every older one. The new segment leads with an
// id high-water marker so replay never reuses a surrendered ID.
func (v *LogVault) compactShard(sh *logShard) error {
	ids := make([]uint64, 0, len(v.idx))
	for id, lr := range v.idx {
		if lr.shard == sh.id {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	oldFiles := sh.files
	oldSeq := sh.seq
	sh.files = make(map[uint64]*os.File)
	if err := v.newSegment(sh, oldSeq+1); err != nil {
		// Keep the old chain readable; the failed fresh segment (if
		// created) is tracked in sh.files and will be closed with the rest.
		for q, f := range oldFiles {
			sh.files[q] = f
		}
		return err
	}
	marker := binary.BigEndian.AppendUint64(nil, v.nextID)
	if _, err := sh.appendFrame(frameNextID, marker); err != nil {
		for q, f := range oldFiles {
			sh.files[q] = f
		}
		return err
	}
	live := int64(frameHdrSize + len(marker))
	for _, id := range ids {
		lr := v.idx[id]
		payload := make([]byte, lr.size)
		if _, err := oldFiles[lr.seg].ReadAt(payload, lr.off); err != nil {
			for q, f := range oldFiles {
				sh.files[q] = f
			}
			return fmt.Errorf("vault: compaction read: %w", err)
		}
		off, err := sh.appendFrame(framePut, payload)
		if err != nil {
			for q, f := range oldFiles {
				sh.files[q] = f
			}
			return err
		}
		lr.seg, lr.off = sh.seq, off
		live += frameHdrSize + lr.size
	}
	for q, f := range oldFiles {
		f.Close()
		os.Remove(segPath(v.dir, sh.id, q))
	}
	sh.live, sh.dead = live, 0
	v.compactions++
	return nil
}

// Compact synchronously compacts every shard, regardless of dead-byte
// ratios — the explicit form of the rotation-time trigger.
func (v *LogVault) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	for _, sh := range v.shards {
		if err := v.compactShard(sh); err != nil {
			return err
		}
	}
	return nil
}

// Get decrypts record id, reading the sealed payload back from its
// segment.
func (v *LogVault) Get(id uint64) ([]byte, *Record, error) {
	v.mu.RLock()
	if v.closed {
		v.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	aead := v.aead
	lr, ok := v.idx[id]
	if !ok {
		v.mu.RUnlock()
		return nil, nil, ErrNotFound
	}
	payload := make([]byte, lr.size)
	_, err := v.shards[lr.shard].files[lr.seg].ReadAt(payload, lr.off)
	v.mu.RUnlock()
	if err != nil {
		return nil, nil, fmt.Errorf("vault: segment read: %w", err)
	}
	rec, nonce, ct, err := decodePutPayload(payload)
	if err != nil {
		return nil, nil, err
	}
	pt, err := aead.Open(nil, nonce, ct, aad(id, rec.Domain))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	out := Record{ID: rec.ID, Domain: rec.Domain, Verdict: rec.Verdict, Received: rec.Received}
	return pt, &out, nil
}

// Len returns the number of live records.
func (v *LogVault) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.idx)
}

// Meta returns the clear metadata of every live record in ID order —
// readable after Close, like the in-memory Vault.
func (v *LogVault) Meta() []Record {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Record, 0, len(v.idx))
	for id := uint64(1); id < v.nextID; id++ {
		if lr, ok := v.idx[id]; ok {
			m := lr.meta
			out = append(out, Record{ID: m.ID, Domain: m.Domain, Verdict: m.Verdict, Received: m.Received})
		}
	}
	return out
}

// Surrender appends tombstones for every record of domain and drops
// them from the index; the bytes die in place until compaction. Unlike
// the in-memory Vault, a closed LogVault cannot append tombstones, so
// Surrender after Close is a no-op returning 0.
func (v *LogVault) Surrender(domain string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0
	}
	ids := make([]uint64, 0, 8)
	for id, lr := range v.idx {
		if lr.meta.Domain == domain {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sh := v.shards[shardOf(domain, len(v.shards))]
	n := 0
	for _, id := range ids {
		lr := v.idx[id]
		tomb := binary.BigEndian.AppendUint64(nil, id)
		if _, err := sh.appendFrame(frameTomb, tomb); err != nil {
			break // records already dropped stay dropped; the rest survive
		}
		delete(v.idx, id)
		owner := v.shards[lr.shard]
		owner.live -= frameHdrSize + lr.size
		owner.dead += frameHdrSize + lr.size
		sh.dead += frameHdrSize + int64(len(tomb))
		n++
	}
	return n
}

// Export writes the Store snapshot: identical bytes to the in-memory
// Vault's Export for the same live content. Unlike the in-memory
// backend it needs the segment files, so it fails with ErrClosed after
// Close.
func (v *LogVault) Export(w io.Writer) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	if err := binary.Write(w, binary.BigEndian, uint64(len(v.idx))); err != nil {
		return err
	}
	for id := uint64(1); id < v.nextID; id++ {
		lr, ok := v.idx[id]
		if !ok {
			continue
		}
		payload := make([]byte, lr.size)
		if _, err := v.shards[lr.shard].files[lr.seg].ReadAt(payload, lr.off); err != nil {
			return fmt.Errorf("vault: segment read: %w", err)
		}
		rec, nonce, ct, err := decodePutPayload(payload)
		if err != nil {
			return err
		}
		if err := writeExportRecord(w, &rec, nonce, ct); err != nil {
			return err
		}
	}
	return nil
}

// RestoreLog rebuilds a log-structured vault in dir from an Export
// stream, preserving IDs, nonces and ciphertext byte-for-byte (records
// are not re-encrypted; a wrong key surfaces at Get time, as with
// Import). dir must not already contain segments.
func RestoreLog(key Key, dir string, opts LogOptions, r io.Reader) (*LogVault, error) {
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if _, _, ok := parseSegName(e.Name()); ok {
				return nil, fmt.Errorf("vault: restore target %s already holds segments", dir)
			}
		}
	}
	v, err := OpenLog(key, dir, opts)
	if err != nil {
		return nil, err
	}
	restored := false
	defer func() {
		if !restored {
			v.Close()
		}
	}()
	err = decodeExportStream(r, func(rec Record) error {
		sh := v.shards[shardOf(rec.Domain, len(v.shards))]
		meta := Record{ID: rec.ID, Domain: rec.Domain, Verdict: rec.Verdict, Received: rec.Received}
		payload := encodePutPayload(meta, rec.nonce, rec.ciphertext)
		off, err := sh.appendFrame(framePut, payload)
		if err != nil {
			return err
		}
		v.idx[rec.ID] = &logRecord{meta: meta, shard: sh.id, seg: sh.seq, off: off, size: int64(len(payload))}
		sh.live += frameHdrSize + int64(len(payload))
		if rec.ID >= v.nextID {
			v.nextID = rec.ID + 1
		}
		if sh.size > v.opts.MaxSegmentBytes {
			return v.newSegment(sh, sh.seq+1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	restored = true
	return v, nil
}

// Close seals the handle: the AEAD becomes unreachable and every
// segment file handle is released. Clear metadata (Len, Meta) stays
// readable; data operations fail with ErrClosed. Idempotent.
func (v *LogVault) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	v.aead = nil
	var firstErr error
	for _, sh := range v.shards {
		for _, f := range sh.files {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.files = nil
		sh.active = nil
	}
	return firstErr
}

// LogStats describes the on-disk state, for tests and ops.
type LogStats struct {
	Segments    int // segment files currently on disk
	Compactions int // compaction passes since open
	LiveBytes   int64
	DeadBytes   int64
}

// Stats reports segment/compaction counters.
func (v *LogVault) Stats() LogStats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	st := LogStats{Compactions: v.compactions}
	for _, sh := range v.shards {
		st.Segments += len(sh.files)
		st.LiveBytes += sh.live
		st.DeadBytes += sh.dead
	}
	return st
}
