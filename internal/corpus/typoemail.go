package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/extract"
	"repro/internal/mailmsg"
	"repro/internal/sanitize"
)

// SensitiveLine writes one sentence containing a planted identifier of
// the given kind — the generator behind both the Enron-like evaluation
// corpus and the sensitive payloads occasionally present in true typo
// emails (Figure 6).
func SensitiveLine(rng *rand.Rand, kind sanitize.Kind) string {
	switch kind {
	case sanitize.KindCreditCard:
		return "Amex " + randomCard(rng) + " for the booking."
	case sanitize.KindSSN:
		return fmt.Sprintf("My ssn is %03d-%02d-%04d for the form.", 1+rng.Intn(665), 1+rng.Intn(99), 1+rng.Intn(9999))
	case sanitize.KindEIN:
		return fmt.Sprintf("The company EIN: %02d-%07d.", 10+rng.Intn(89), 1000000+rng.Intn(8999999))
	case sanitize.KindPassword:
		return "password: " + randomSecret(rng)
	case sanitize.KindVIN:
		return "Vehicle vin " + randomVIN(rng) + " needs registration."
	case sanitize.KindUsername:
		return "username: " + pick(rng, FirstNames) + fmt.Sprintf("%02d", rng.Intn(100))
	case sanitize.KindZip:
		return fmt.Sprintf("Ship to Houston, TX %05d please.", 10000+rng.Intn(89999))
	case sanitize.KindIDNumber:
		return fmt.Sprintf("Your account number is %s%04d.", pick(rng, FirstNames)[:2], rng.Intn(10000))
	case sanitize.KindEmail:
		return "Reach me at " + PersonAddr(rng, "enron.com") + " anytime."
	case sanitize.KindPhone:
		return fmt.Sprintf("Call me at %03d-%03d-%04d.", 200+rng.Intn(700), 200+rng.Intn(700), rng.Intn(10000))
	default: // date
		return fmt.Sprintf("The closing is on %02d/%02d/%d.", 1+rng.Intn(12), 1+rng.Intn(28), 2015+rng.Intn(3))
	}
}

// attachmentExts approximates Figure 7's extension mix among true typo
// emails (txt and office documents dominate; images frequent; a tail of
// calendar and markup files).
var attachmentExts = []struct {
	ext    string
	weight int
}{
	{"txt", 4571}, {"jpg", 1617}, {"pdf", 1113}, {"png", 335}, {"docx", 307},
	{"xml", 146}, {"gif", 80}, {"doc", 65}, {"jpeg", 52}, {"xlsx", 19},
	{"xls", 18}, {"ics", 11}, {"html", 10}, {"docm", 9}, {"pptx", 6}, {"rtf", 4},
}

// SampleAttachment draws an attachment with Figure 7's extension mix.
// Office-document extensions carry real SDOC/SPDF containers so the
// extraction pipeline has something to chew on.
func SampleAttachment(rng *rand.Rand) mailmsg.Attachment {
	total := 0
	for _, e := range attachmentExts {
		total += e.weight
	}
	x := rng.Intn(total)
	ext := "txt"
	for _, e := range attachmentExts {
		x -= e.weight
		if x < 0 {
			ext = e.ext
			break
		}
	}
	name := fmt.Sprintf("%s-%d.%s", pick(rng, BusinessWords), rng.Intn(1000), ext)
	content := words(rng, 20+rng.Intn(30))
	switch ext {
	case "docx", "doc", "docm", "rtf", "xlsx", "xls", "pptx":
		return mailmsg.Attachment{Filename: name, ContentType: "application/octet-stream", Data: extract.BuildSDOC(content)}
	case "pdf":
		return mailmsg.Attachment{Filename: name, ContentType: "application/pdf", Data: extract.BuildSPDF(content)}
	case "jpg", "jpeg", "png", "gif":
		return mailmsg.Attachment{Filename: name, ContentType: "image/" + ext, Data: extract.BuildSIMG(words(rng, 6))}
	default:
		return mailmsg.Attachment{Filename: name, ContentType: "text/plain", Data: []byte(content)}
	}
}

// TypoEmail builds one "true receiver typo" email: a personal message a
// real sender meant for someone else, optionally carrying sensitive
// lines and an attachment.
func TypoEmail(rng *rand.Rand, from, rcpt string, kinds []sanitize.Kind) *mailmsg.Message {
	doc := plainDoc(rng)
	var body strings.Builder
	body.WriteString(doc.Text)
	for _, k := range kinds {
		body.WriteByte('\n')
		body.WriteString(SensitiveLine(rng, k))
	}
	b := mailmsg.NewBuilder(from, rcpt, doc.Subject).Body(body.String())
	b.MessageID(fmt.Sprintf("typo-%d@%s", rng.Int63(), mailmsg.AddrDomain(from)))
	if rng.Float64() < 0.12 { // a minority of personal mail has attachments
		a := SampleAttachment(rng)
		b.Attach(a.Filename, a.ContentType, a.Data)
	}
	return b.Build()
}
