// Package corpus generates the labeled synthetic corpora the study's
// evaluations run on, replacing datasets we cannot ship:
//
//   - an Enron-like business-email corpus with planted sensitive
//     identifiers, ground truth known by construction (Table 2's
//     evaluation substrate);
//   - four spam/ham datasets standing in for TREC, CSDMC, the
//     SpamAssassin public corpus and the Untroubled spam archive
//     (Table 3), each with its own "evasion level" so the filter's
//     recall varies across datasets the way the paper reports;
//   - the word/name lexicons the user and spam generators draw from.
//
// All output is deterministic given a seed.
package corpus

import (
	"math/rand"
	"strings"
)

// Lexicons are intentionally small: the generators compose them
// combinatorially, which is what matters for the bag-of-words and
// frequency analyses downstream.

// FirstNames used for senders and signatures.
var FirstNames = []string{
	"john", "dave", "rob", "barry", "alice", "carol", "erin", "frank",
	"grace", "heidi", "ivan", "judy", "ken", "laura", "mallory", "niaz",
	"olivia", "peggy", "quentin", "rupert", "sybil", "trent", "victor", "wendy",
}

// LastNames used for senders and signatures.
var LastNames = []string{
	"lavorato", "delainey", "milnthorp", "tycholiz", "smith", "jones",
	"taylor", "brown", "williams", "wilson", "johnson", "davies", "patel",
	"walker", "wright", "thompson", "white", "hughes", "edwards", "green",
}

// BusinessWords compose ham bodies.
var BusinessWords = []string{
	"meeting", "schedule", "contract", "pipeline", "capacity", "position",
	"forecast", "quarter", "revenue", "desk", "trading", "counterparty",
	"settlement", "invoice", "approval", "deadline", "review", "proposal",
	"budget", "hedge", "delivery", "storage", "agreement", "summary",
	"update", "report", "numbers", "spreadsheet", "conference", "travel",
	"rooms", "booking", "flight", "agenda", "minutes", "follow", "team",
	"project", "client", "vendor", "legal", "draft", "final", "attached",
}

// HamSubjects start ham subject lines.
var HamSubjects = []string{
	"meeting tomorrow", "re: contract draft", "travel plans", "q3 forecast",
	"lunch?", "fw: pipeline capacity", "schedule update", "re: invoice",
	"weekend plans", "conference registration", "re: proposal review",
	"budget numbers", "team offsite", "re: settlement", "quick question",
}

// SpamSubjectsObvious trip many content rules.
var SpamSubjectsObvious = []string{
	"VIAGRA 80% OFF TODAY ONLY!!!", "You are a WINNER! Claim your prize",
	"FREE money waiting for you", "Hot singles in your area!!!",
	"URGENT: your account will be suspended", "Make $5000 a week from home",
	"Cheap meds no prescription needed", "CONGRATULATIONS you have been selected",
	"Lose 30 pounds in 30 days GUARANTEED", "Nigerian prince requires assistance",
}

// SpamSubjectsSubtle trip fewer rules (the Untroubled-archive style).
var SpamSubjectsSubtle = []string{
	"re: your inquiry", "document attached", "invoice 4451", "delivery status",
	"account statement", "order confirmation", "scanned document", "payment advice",
	"voicemail message", "fax received", "re: re: proposal",
}

// SpamPhrases compose spam bodies.
var SpamPhrases = []string{
	"click here now", "limited time offer", "act now", "no obligation",
	"100% free", "risk free", "money back guarantee", "order now",
	"unsubscribe here", "this is not spam", "dear friend", "winner winner",
	"claim your prize", "exclusive deal", "lowest prices", "online pharmacy",
	"work from home", "extra income", "no experience required", "be your own boss",
}

// SubtleSpamPhrases avoid the obvious keywords.
var SubtleSpamPhrases = []string{
	"please see the attached file", "kindly confirm receipt",
	"your statement is ready", "view the document", "the file is attached",
	"per our records", "reference number enclosed", "see attachment for details",
}

// NewsletterPhrases mark reflection-typo notification mail (Layer 4 cues).
var NewsletterPhrases = []string{
	"to unsubscribe from this list click here",
	"you are receiving this because you signed up",
	"remove yourself from future mailings",
	"manage your email preferences",
	"update your subscription settings",
}

// ServiceNames are the senders of reflection-typo notifications.
var ServiceNames = []string{
	"raffle-central", "shopfast", "jobhunt", "newsburst", "traveldeals",
	"fitclub", "couponblast", "socialife", "gamezone", "learnly",
}

// pick returns a deterministic random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// words returns n space-joined business words.
func words(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(pick(rng, BusinessWords))
	}
	return sb.String()
}

// PersonName returns a deterministic "first last" pair.
func PersonName(rng *rand.Rand) (string, string) {
	return pick(rng, FirstNames), pick(rng, LastNames)
}

// PersonAddr builds an address like d.lavorato@domain.
func PersonAddr(rng *rand.Rand, domain string) string {
	f, l := PersonName(rng)
	return f[:1] + "." + l + "@" + domain
}
