package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/par"
	"repro/internal/sanitize"
)

// EnronDoc is one synthetic business email with ground-truth identifier
// labels, the unit of the Table 2 evaluation.
type EnronDoc struct {
	Subject string
	Text    string
	Truth   map[sanitize.Kind]bool
}

// Labeled converts the doc to the sanitizer's evaluation input.
func (d EnronDoc) Labeled() sanitize.LabeledDoc {
	return sanitize.LabeledDoc{Text: d.Text, Truth: d.Truth}
}

// EnronOptions sizes the corpus.
type EnronOptions struct {
	// Plain is the number of emails without planted identifiers.
	Plain int
	// PerKind is the number of emails planted with each identifier kind
	// (SSN uses min(PerKind, 13) to mirror the paper's 13 available SSN
	// examples).
	PerKind int
	Seed    int64
}

// DefaultEnronOptions sizes the corpus like the paper's evaluation: 20
// sampled per kind plus a large plain background.
func DefaultEnronOptions() EnronOptions {
	return EnronOptions{Plain: 600, PerKind: 24, Seed: 2016}
}

// enronCache memoizes generated corpora by options: generation is
// seeded, so equal options always yield the same documents. Callers get
// a fresh top-level slice but share the Truth maps, which are read-only
// by convention.
var (
	enronMu    sync.Mutex
	enronCache = map[EnronOptions][]EnronDoc{}
)

// GenerateEnron produces the labeled corpus.
func GenerateEnron(opts EnronOptions) []EnronDoc {
	enronMu.Lock()
	docs, ok := enronCache[opts]
	if !ok {
		docs = generateEnron(opts)
		enronCache[opts] = docs
	}
	enronMu.Unlock()
	return append([]EnronDoc(nil), docs...)
}

func generateEnron(opts EnronOptions) []EnronDoc {
	rng := par.Rand(opts.Seed, 0)
	docs := make([]EnronDoc, 0, opts.Plain)
	for i := 0; i < opts.Plain; i++ {
		docs = append(docs, plainDoc(rng))
	}
	for _, kind := range sanitize.AllKinds() {
		n := opts.PerKind
		if kind == sanitize.KindSSN && n > 13 {
			n = 13
		}
		for i := 0; i < n; i++ {
			docs = append(docs, plantedDoc(rng, kind))
		}
	}
	// Hard cases: prose that brushes against detectors without containing
	// the identifier, so precision has something to lose.
	for i := 0; i < opts.Plain/10; i++ {
		docs = append(docs, trickyDoc(rng))
	}
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	return docs
}

func plainDoc(rng *rand.Rand) EnronDoc {
	first, last := PersonName(rng)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s\n\n", titleCase(first), titleCase(last))
	lines := 2 + rng.Intn(5)
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "The %s is ready for your %s.\n", pick(rng, BusinessWords), pick(rng, BusinessWords))
	}
	fmt.Fprintf(&sb, "\nThanks\n%s", titleCase(first))
	truth := map[sanitize.Kind]bool{}
	return EnronDoc{Subject: pick(rng, HamSubjects), Text: sb.String(), Truth: truth}
}

// plantedDoc writes a business email containing exactly the planted
// identifier kind (plus whatever kinds the planting sentence necessarily
// introduces, recorded in Truth).
func plantedDoc(rng *rand.Rand, kind sanitize.Kind) EnronDoc {
	base := plainDoc(rng)
	truth := base.Truth
	truth[kind] = true
	base.Text += "\n" + SensitiveLine(rng, kind)
	return EnronDoc{Subject: base.Subject, Text: base.Text, Truth: truth}
}

// trickyDoc produces two flavors of detector bait: near-misses a correct
// detector must not fire on, and prose that genuinely fools the fuzzy
// regexes (password/username/idnumber), giving those rows the imperfect
// precision the paper reports (0.33, 0.59, 0.75).
func trickyDoc(rng *rand.Rand) EnronDoc {
	base := plainDoc(rng)
	nearMisses := []string{
		"The password reset link expired again.",
		"Please update the username for that shared form.",
		fmt.Sprintf("PO number %d shipped yesterday.", 10000+rng.Intn(89999)),
		"Version 1.2.3 of the model is out.",
		fmt.Sprintf("Invoice total came to %d units.", 4111111111111112), // fails Luhn
	}
	// Sentences where the detector fires but no real identifier exists.
	falsePositives := []string{
		"password: forthcoming once IT finishes the reset.",
		"password: redacted in the attached copy.",
		"username: optional when filing through the portal.",
		"username: unchanged since the merger.",
		"The account number is listed in the statement footer.",
		"Your case number is pending assignment.",
	}
	if rng.Float64() < 0.55 {
		base.Text += "\n" + falsePositives[rng.Intn(len(falsePositives))]
	} else {
		base.Text += "\n" + nearMisses[rng.Intn(len(nearMisses))]
	}
	return base
}

func randomCard(rng *rand.Rand) string {
	prefixes := []string{"4", "51", "37", "6011", "35", "36"}
	p := pick(rng, prefixes)
	length := 16
	if p == "37" || p == "36" {
		length = 15
	}
	buf := append(make([]byte, 0, length), p...)
	for len(buf) < length-1 {
		buf = append(buf, byte('0'+rng.Intn(10)))
	}
	return sanitize.LuhnComplete(string(buf))
}

func randomSecret(rng *rand.Rand) string {
	const chars = "abcdefghjkmnpqrstuvwxyz23456789!$"
	b := make([]byte, 8+rng.Intn(5))
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

func randomVIN(rng *rand.Rand) string {
	const chars = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"
	b := make([]byte, 17)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	vin, ok := sanitize.ComputeVINCheckDigit(string(b))
	if !ok {
		return "1HGBH41JXMN109186"
	}
	return vin
}
