package corpus

import (
	"math/rand"
	"testing"

	"repro/internal/extract"
	"repro/internal/mailmsg"
	"repro/internal/sanitize"
)

func TestGenerateEnronDeterministic(t *testing.T) {
	a := GenerateEnron(DefaultEnronOptions())
	b := GenerateEnron(DefaultEnronOptions())
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
}

func TestGenerateEnronComposition(t *testing.T) {
	opts := DefaultEnronOptions()
	docs := GenerateEnron(opts)
	perKind := map[sanitize.Kind]int{}
	for _, d := range docs {
		for k, v := range d.Truth {
			if v {
				perKind[k]++
			}
		}
	}
	for _, k := range sanitize.AllKinds() {
		want := opts.PerKind
		if k == sanitize.KindSSN {
			want = 13 // the paper only had 13 SSN examples
		}
		if perKind[k] != want {
			t.Errorf("kind %s planted %d, want %d", k, perKind[k], want)
		}
	}
}

// TestTable2Shape: the detectors must reproduce Table 2's pattern on the
// synthetic Enron corpus — near-perfect sensitivity for the structured
// identifiers, high precision for most, and visibly weaker precision for
// the fuzzy ones (password, username, idnumber).
func TestTable2Shape(t *testing.T) {
	docs := GenerateEnron(DefaultEnronOptions())
	labeled := make([]sanitize.LabeledDoc, len(docs))
	for i, d := range docs {
		labeled[i] = d.Labeled()
	}
	scores := sanitize.Evaluate(labeled)
	strong := []sanitize.Kind{
		sanitize.KindCreditCard, sanitize.KindSSN, sanitize.KindEIN,
		sanitize.KindVIN, sanitize.KindZip, sanitize.KindEmail,
		sanitize.KindPhone, sanitize.KindDate,
	}
	for _, k := range strong {
		s := scores[k]
		if s.Sensitivity < 0.9 {
			t.Errorf("%s sensitivity = %.2f, want >= 0.9", k, s.Sensitivity)
		}
		if s.Precision < 0.85 {
			t.Errorf("%s precision = %.2f, want >= 0.85", k, s.Precision)
		}
	}
	for _, k := range []sanitize.Kind{sanitize.KindPassword, sanitize.KindUsername} {
		if s := scores[k]; s.Sensitivity < 0.9 {
			t.Errorf("%s sensitivity = %.2f, want >= 0.9 (paper: 1.00)", k, s.Sensitivity)
		}
	}
}

func TestGenerateDatasets(t *testing.T) {
	for _, ds := range AllDatasets() {
		msgs := Generate(ds)
		if len(msgs) == 0 {
			t.Fatalf("%s empty", ds)
		}
		spam := 0
		for _, lm := range msgs {
			if lm.Msg == nil {
				t.Fatalf("%s has nil message", ds)
			}
			if lm.Spam {
				spam++
			}
		}
		frac := float64(spam) / float64(len(msgs))
		if ds == DatasetUntroubled && frac != 1.0 {
			t.Errorf("Untroubled spam fraction = %.2f, want 1.0", frac)
		}
		if ds != DatasetUntroubled && (frac < 0.2 || frac > 0.8) {
			t.Errorf("%s spam fraction = %.2f, want mixed", ds, frac)
		}
	}
	if Generate(Dataset("nope")) != nil {
		t.Error("unknown dataset should be nil")
	}
}

func TestMessagesParseable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		for _, m := range []*mailmsg.Message{
			HamMessage(rng), SpamMessage(rng, 0.5), ReflectionMessage(rng, "x@gmial.com"),
		} {
			if _, err := mailmsg.Parse(m.Bytes()); err != nil {
				t.Fatalf("generated message unparseable: %v", err)
			}
			if mailmsg.Addr(m.From()) == "" || mailmsg.Addr(m.To()) == "" {
				t.Fatalf("missing addresses: %q -> %q", m.From(), m.To())
			}
		}
	}
}

func TestCampaignSharesBag(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m1 := CampaignMessage(rng, 42, 0)
	m2 := CampaignMessage(rng, 42, 0)
	if m1.Body != m2.Body {
		t.Error("same campaign should share body")
	}
	if m1.To() == m2.To() {
		t.Error("recipients should vary within a campaign")
	}
	m3 := CampaignMessage(rng, 43, 0)
	if m1.Body == m3.Body {
		t.Error("different campaigns should differ")
	}
}

func TestReflectionMessageMarkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := ReflectionMessage(rng, "victim@gmial.com")
	if !m.HasHeader("List-Unsubscribe") {
		t.Error("List-Unsubscribe missing")
	}
	if m.To() != "victim@gmial.com" {
		t.Errorf("To = %q", m.To())
	}
}

func TestPersonAddr(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	addr := PersonAddr(rng, "enron.com")
	if mailmsg.AddrDomain(addr) != "enron.com" {
		t.Errorf("addr = %q", addr)
	}
}

func TestScamMessageSurvivesFunnelRules(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		m := ScamMessage(rng, "victim@gmial.com")
		if _, err := mailmsg.Parse(m.Bytes()); err != nil {
			t.Fatalf("scam unparseable: %v", err)
		}
		if m.To() != "victim@gmial.com" {
			t.Fatalf("rcpt = %q", m.To())
		}
		if len(m.Attachments) != 0 {
			t.Fatal("scams must not carry attachments (archive rule)")
		}
		if !m.HasHeader("Message-Id") {
			t.Fatal("missing Message-Id would trip the scorer")
		}
	}
	// Distinct scams must have distinct senders and bodies (one-off).
	a, b := ScamMessage(rng, "x@y.com"), ScamMessage(rng, "x@y.com")
	if a.From() == b.From() {
		t.Error("scam senders repeat")
	}
}

func TestSampleAttachmentDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		a := SampleAttachment(rng)
		if a.Filename == "" || len(a.Data) == 0 {
			t.Fatal("empty attachment")
		}
		counts[a.Ext()]++
	}
	// Figure 7's mix: txt dominates, jpg second, pdf third.
	if !(counts["txt"] > counts["jpg"] && counts["jpg"] > counts["pdf"]) {
		t.Errorf("extension mix off: %v", counts)
	}
	if counts["zip"]+counts["rar"] != 0 {
		t.Error("generator produced forbidden archives as personal attachments")
	}
	// Office docs and images must be extractable (the pipeline consumes them).
	for i := 0; i < 200; i++ {
		a := SampleAttachment(rng)
		switch a.Ext() {
		case "docx", "pdf", "jpg", "png", "txt":
			if _, err := extract.Text(a.Filename, a.Data); err != nil {
				t.Fatalf("%s not extractable: %v", a.Filename, err)
			}
		}
	}
}

func TestTypoEmailSensitivePlanting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := TypoEmail(rng, "a@gmail.com", "b@gmial.com", []sanitize.Kind{sanitize.KindCreditCard, sanitize.KindSSN})
	kinds := map[sanitize.Kind]bool{}
	for _, f := range sanitize.Scan(m.Body) {
		kinds[f.Kind] = true
	}
	if !kinds[sanitize.KindCreditCard] || !kinds[sanitize.KindSSN] {
		t.Errorf("planted kinds not detectable: %v", kinds)
	}
	plain := TypoEmail(rng, "a@gmail.com", "b@gmial.com", nil)
	for _, f := range sanitize.Scan(plain.Body) {
		switch f.Kind {
		case sanitize.KindCreditCard, sanitize.KindSSN, sanitize.KindVIN:
			t.Errorf("unplanted %s appeared: %q", f.Kind, f.Match)
		}
	}
}
