package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/mailmsg"
	"repro/internal/par"
)

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// LabeledMessage pairs a message with its spam ground truth.
type LabeledMessage struct {
	Msg  *mailmsg.Message
	Spam bool
}

// Dataset names the four Table 3 corpora.
type Dataset string

// The four spam-filter evaluation datasets of Table 3. Each stands in
// for the real corpus of the same flavor: mixed ham/spam with obvious
// spam (TREC-like), mixed with moderately obvious spam (CSDMC-like),
// the SpamAssassin public corpus mix, and the Untroubled archive —
// all spam, much of it low-signal.
const (
	DatasetTREC         Dataset = "TREC"
	DatasetCSDMC        Dataset = "CSDMC"
	DatasetSpamAssassin Dataset = "SpamAssassin"
	DatasetUntroubled   Dataset = "Untroubled"
)

// AllDatasets returns Table 3's row order.
func AllDatasets() []Dataset {
	return []Dataset{DatasetTREC, DatasetCSDMC, DatasetSpamAssassin, DatasetUntroubled}
}

// datasetProfile tunes the generator per dataset: the ham/spam mix and
// how evasive the spam is (0 = blatant, 1 = fully disguised).
type datasetProfile struct {
	n        int
	spamFrac float64
	evasion  float64
	seed     int64
}

var profiles = map[Dataset]datasetProfile{
	DatasetTREC:         {n: 1500, spamFrac: 0.55, evasion: 0.18, seed: 101},
	DatasetCSDMC:        {n: 1200, spamFrac: 0.40, evasion: 0.10, seed: 102},
	DatasetSpamAssassin: {n: 1200, spamFrac: 0.35, evasion: 0.14, seed: 103},
	DatasetUntroubled:   {n: 1000, spamFrac: 1.00, evasion: 0.72, seed: 104},
}

// genCache memoizes the deterministic datasets: generation is seeded,
// so every call to Generate(ds) produces the same corpus, and repeated
// analyses (Table 3 runs, benchmarks, differential tests) should not
// re-pay message construction. Callers get a fresh top-level slice but
// share the Message pointers, which are read-only by convention.
var (
	genMu    sync.Mutex
	genCache = map[Dataset][]LabeledMessage{}
)

// Generate produces the named dataset.
func Generate(ds Dataset) []LabeledMessage {
	genMu.Lock()
	msgs, ok := genCache[ds]
	if !ok {
		msgs = generate(ds)
		genCache[ds] = msgs
	}
	genMu.Unlock()
	if msgs == nil {
		return nil
	}
	return append([]LabeledMessage(nil), msgs...)
}

func generate(ds Dataset) []LabeledMessage {
	p, ok := profiles[ds]
	if !ok {
		return nil
	}
	rng := par.Rand(p.seed, 0)
	out := make([]LabeledMessage, 0, p.n)
	for i := 0; i < p.n; i++ {
		if rng.Float64() < p.spamFrac {
			out = append(out, LabeledMessage{Msg: SpamMessage(rng, p.evasion), Spam: true})
		} else {
			out = append(out, LabeledMessage{Msg: HamMessage(rng), Spam: false})
		}
	}
	return out
}

// HamMessage builds a benign person-to-person email.
func HamMessage(rng *rand.Rand) *mailmsg.Message {
	doc := plainDoc(rng)
	from := PersonAddr(rng, pick(rng, []string{"enron.com", "gmail.com", "aol.com", "comcast.net"}))
	to := PersonAddr(rng, pick(rng, []string{"gmail.com", "hotmail.com", "outlook.com"}))
	b := mailmsg.NewBuilder(from, to, doc.Subject).Body(doc.Text)
	b.MessageID(fmt.Sprintf("ham-%d@%s", rng.Int63(), mailmsg.AddrDomain(from)))
	return b.Build()
}

// SpamMessage builds a spam email at the given evasion level. Low
// evasion trips many filter rules (shouty subject, spam phrases, money
// amounts, link farms); high evasion mimics transactional mail and slips
// past keyword rules.
func SpamMessage(rng *rand.Rand, evasion float64) *mailmsg.Message {
	evasive := rng.Float64() < evasion
	var subject, body string
	if evasive {
		subject = pick(rng, SpamSubjectsSubtle)
		var sb strings.Builder
		for i := 0; i < 2+rng.Intn(3); i++ {
			sb.WriteString(titleCase(pick(rng, SubtleSpamPhrases)))
			sb.WriteString(". ")
		}
		body = sb.String()
	} else {
		subject = pick(rng, SpamSubjectsObvious)
		var sb strings.Builder
		for i := 0; i < 3+rng.Intn(5); i++ {
			sb.WriteString(strings.ToUpper(pick(rng, SpamPhrases)))
			sb.WriteString("!!! ")
		}
		fmt.Fprintf(&sb, "\nOnly $%d.99 today. ", 9+rng.Intn(90))
		for i := 0; i < 2+rng.Intn(4); i++ {
			fmt.Fprintf(&sb, "http://%s.ru/offer?id=%d ", pick(rng, FirstNames), rng.Intn(1e6))
		}
		body = sb.String()
	}
	from := fmt.Sprintf("%s%d@%s", pick(rng, FirstNames), rng.Intn(10000),
		pick(rng, []string{"offers-zone.ru", "bulkblast.cn", "freemail.biz", "promo-hub.info"}))
	to := PersonAddr(rng, pick(rng, []string{"gmail.com", "hotmail.com", "yahoo.com"}))
	b := mailmsg.NewBuilder(from, to, subject).Body(body)
	if !evasive {
		if rng.Float64() < 0.5 {
			// Forged Reply-To differing from From: a classic header tell.
			b.Header("Reply-To", fmt.Sprintf("claims%d@collect-prize.ru", rng.Intn(1000)))
		}
		if rng.Float64() < 0.25 {
			// The paper drops every ZIP/RAR attachment as spam on sight.
			ext := pick(rng, []string{"zip", "rar"})
			b.Attach("invoice."+ext, "application/octet-stream", []byte{0x50, 0x4B, 0x03, 0x04, byte(rng.Intn(256))})
		}
	} else if rng.Float64() < 0.4 {
		b.Attach("document.pdf", "application/pdf", []byte("%SPDF-1.0\nobj 4\nscan\nendobj\n%%EOF\n"))
	}
	b.MessageID(fmt.Sprintf("spam-%d@%s", rng.Int63(), mailmsg.AddrDomain(from)))
	return b.Build()
}

// CampaignMessage builds one message of a spam campaign: all messages of
// a campaign share their body skeleton (same bag of words), which is what
// Layer 3's collaborative filter keys on.
func CampaignMessage(rng *rand.Rand, campaignID int, evasion float64) *mailmsg.Message {
	// Derive the campaign's fixed content from its ID, then randomize only
	// the recipient and trivial fields.
	crng := par.Rand(13, campaignID)
	msg := SpamMessage(crng, evasion)
	to := PersonAddr(rng, pick(rng, []string{"gmail.com", "hotmail.com", "outlook.com", "yahoo.com"}))
	msg.SetHeader("To", to)
	msg.SetHeader("Message-Id", fmt.Sprintf("<c%d-%d@spam.example>", campaignID, rng.Int63()))
	return msg
}

// ScamMessage builds the kind of spam that beats every automated layer:
// a hand-written, one-off advance-fee or business-proposition email with
// a unique sender, unique wording, no links, no list headers and no
// archive attachments. These are what the paper's manual analysis found
// hiding among the funnel survivors (~20% of them).
func ScamMessage(rng *rand.Rand, rcpt string) *mailmsg.Message {
	first, last := PersonName(rng)
	from := fmt.Sprintf("%s.%s%d@%s", first, last, rng.Intn(1000),
		pick(rng, []string{"gmail.com", "yahoo.com", "hotmail.com"}))
	openers := []string{
		"Greetings to you and your family.",
		"I hope this message finds you well.",
		"Pardon my intrusion into your busy schedule.",
		"It is with trust that I contact you today.",
	}
	asks := []string{
		"a confidential business proposition of mutual benefit",
		"the transfer of a dormant family estate",
		"an investment opportunity in my late husband's holdings",
		"assistance with a charitable endowment",
	}
	body := fmt.Sprintf("%s\n\nI am %s %s, and I wish to discuss %s with you. "+
		"The %s involved is considerable and requires a trustworthy partner such as yourself. "+
		"Kindly respond so I may share the particulars of the %s.\n\nWith respect,\n%s %s\n",
		pick(rng, openers), titleCase(first), titleCase(last), pick(rng, asks),
		pick(rng, BusinessWords), pick(rng, BusinessWords), titleCase(first), titleCase(last))
	b := mailmsg.NewBuilder(from, rcpt, "a matter of importance").Body(body)
	b.MessageID(fmt.Sprintf("scam-%d@%s", rng.Int63(), mailmsg.AddrDomain(from)))
	return b.Build()
}

// ReflectionMessage builds the automated mail a service sends to a
// mistyped registration address: list headers, unsubscribe text, a
// service sender — everything Layer 4 detects.
func ReflectionMessage(rng *rand.Rand, rcpt string) *mailmsg.Message {
	service := pick(rng, ServiceNames)
	from := fmt.Sprintf("no-reply@%s.com", service)
	phrase := pick(rng, NewsletterPhrases)
	b := mailmsg.NewBuilder(from, rcpt, titleCase(service)+" — confirm your registration").
		Body(fmt.Sprintf("Welcome to %s!\nYour registration is almost complete.\n\n%s\n",
			service, phrase)).
		HTML(fmt.Sprintf("<html><body><h1>Welcome to %s!</h1><p>Your registration is almost complete.</p><p><a href=\"https://%s.com/confirm\">Confirm</a></p><p style=\"font-size:smaller\">%s</p></body></html>",
			service, service, phrase))
	b.Header("List-Unsubscribe", fmt.Sprintf("<https://%s.com/unsub>", service))
	b.Header("Sender", "bounce-"+service+"@"+service+".com")
	b.MessageID(fmt.Sprintf("refl-%d@%s.com", rng.Int63(), service))
	return b.Build()
}
