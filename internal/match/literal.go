package match

import (
	"regexp/syntax"
	"unicode"
)

// Pattern scan modes. modeFactors patterns are driven by Aho–Corasick
// literal hits; modeFirstByte patterns (dense classes like credit-card
// digit runs, where no useful literal exists) are driven by a lazy
// first-byte scan; modeBOT patterns are anchored at the beginning of
// text and have exactly one candidate; modeFallback patterns run the
// stdlib oracle directly — always correct, never fast.
const (
	modeFactors = iota
	modeFirstByte
	modeBOT
	modeFallback
)

const inf = 1 << 30

// litFactor is one required literal of a pattern: every match of the
// pattern contains lit (case-folded) starting between minPre and
// maxPre bytes after the match start. back != nil marks a backwalk
// factor instead: the match start is found by walking left from the
// literal over bytes in back (the class of the unbounded prefix run).
type litFactor struct {
	lit            string
	minPre, maxPre int
	back           *[256]bool
	needNW         bool // match start requires a non-word byte before it (\b + word first char)
}

// analysis is everything Compile derives from one pattern's syntax
// tree.
type analysis struct {
	mode    int
	factors []litFactor
	first   *[256]bool // modeFirstByte: set of possible first bytes
	needNW  bool       // modeFirstByte: \b precheck applies at candidates
	minLen  int
	// firstSet, when non-nil, is the exact set of bytes a match can
	// start with — a cheap necessary-condition check applied to every
	// factor-derived candidate before it is recorded. (Non-ASCII first
	// runes make firstBytes fail, leaving firstSet nil and the check
	// off.)
	firstSet *[256]bool
}

// analyze classifies a parsed pattern. The caller falls back to the
// oracle whenever mode is modeFallback; everything else is a
// necessary-condition prefilter, proven a superset of true match
// starts by the differential suite.
func analyze(re *syntax.Regexp) analysis {
	mn, _ := byteLen(re)
	a := analysis{minLen: mn}
	if mn == 0 {
		// An empty match defeats both the prefilter (no required
		// bytes) and FindAll resume arithmetic; the oracle handles it.
		a.mode = modeFallback
		return a
	}
	if hasOp(re, syntax.OpBeginLine) || hasOp(re, syntax.OpEndLine) {
		a.mode = modeFallback
		return a
	}
	if startsWith(re, syntax.OpBeginText) {
		a.mode = modeBOT
		return a
	}
	if hasOp(re, syntax.OpBeginText) {
		// \A somewhere other than the head (e.g. inside one branch)
		// breaks the "probe window ≡ whole-text match" argument.
		a.mode = modeFallback
		return a
	}
	if fs, ok := factorsOf(re); ok && len(fs) > 0 {
		if nw, only := boundaryHead(re); only {
			for i := range fs {
				if fs[i].back == nil {
					fs[i].needNW = nw
				}
			}
		}
		a.mode = modeFactors
		a.factors = fs
		if set, _, ok := firstBytes(re); ok {
			a.firstSet = set
		}
		return a
	}
	if first, nw, ok := firstBytes(re); ok {
		a.mode = modeFirstByte
		a.first = first
		a.needNW = nw
		return a
	}
	a.mode = modeFallback
	return a
}

// byteLen bounds the UTF-8 byte length of any match of re. Folded
// literals use fold-orbit widths ('s' can match 2-byte U+017F, 'k' the
// 3-byte U+212A), so the bounds stay sound on fold-trap inputs.
func byteLen(re *syntax.Regexp) (min, max int) {
	switch re.Op {
	case syntax.OpLiteral:
		for _, r := range re.Rune {
			lo, hi := runeWidth(r, re.Flags&syntax.FoldCase != 0)
			min += lo
			max = addCap(max, hi)
		}
	case syntax.OpCharClass:
		if len(re.Rune) == 0 {
			return inf, 0 // matches nothing
		}
		min, max = 4, 1
		for i := 0; i < len(re.Rune); i += 2 {
			lo, _ := runeWidth(re.Rune[i], false)
			_, hi := runeWidth(re.Rune[i+1], false)
			if lo < min {
				min = lo
			}
			if hi > max {
				max = hi
			}
		}
	case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
		return 1, 4
	case syntax.OpCapture:
		return byteLen(re.Sub[0])
	case syntax.OpConcat:
		for _, s := range re.Sub {
			lo, hi := byteLen(s)
			min += lo
			max = addCap(max, hi)
		}
	case syntax.OpAlternate:
		min, max = inf, 0
		for _, s := range re.Sub {
			lo, hi := byteLen(s)
			if lo < min {
				min = lo
			}
			if hi > max {
				max = hi
			}
		}
	case syntax.OpQuest:
		_, hi := byteLen(re.Sub[0])
		return 0, hi
	case syntax.OpStar:
		return 0, inf
	case syntax.OpPlus:
		lo, _ := byteLen(re.Sub[0])
		return lo, inf
	case syntax.OpRepeat:
		lo, hi := byteLen(re.Sub[0])
		min = lo * re.Min
		if re.Max < 0 {
			max = inf
		} else {
			max = mulCap(hi, re.Max)
		}
	default: // empty-width ops: boundaries, anchors, OpEmptyMatch
		return 0, 0
	}
	if min > inf {
		min = inf
	}
	return min, max
}

func runeWidth(r rune, folded bool) (min, max int) {
	w := utf8Len(r)
	min, max = w, w
	if folded {
		for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
			fw := utf8Len(f)
			if fw < min {
				min = fw
			}
			if fw > max {
				max = fw
			}
		}
	}
	return min, max
}

func utf8Len(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	}
	return 4
}

func addCap(a, b int) int {
	if a >= inf || b >= inf {
		return inf
	}
	return a + b
}

func mulCap(a, b int) int {
	if a >= inf || (b > 0 && a > inf/b) {
		return inf
	}
	return a * b
}

const (
	maxFactors   = 64 // alternation fan-out cap
	maxPreSpread = 8  // widest tolerated [minPre,maxPre] offset window
	maxClassLits = 4  // char class treated as per-rune literals up to this size
)

// factorsOf extracts required literal factors with their offset (or
// backwalk) information. ok is false when no sound factor set exists.
func factorsOf(re *syntax.Regexp) ([]litFactor, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		lit, ok := foldLiteral(re)
		if !ok {
			return nil, false
		}
		return []litFactor{{lit: lit}}, true
	case syntax.OpCharClass:
		return classFactors(re)
	case syntax.OpCapture:
		return factorsOf(re.Sub[0])
	case syntax.OpPlus:
		return factorsOf(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return factorsOf(re.Sub[0])
		}
		return nil, false
	case syntax.OpAlternate:
		all := make([]litFactor, 0, maxFactors)
		for _, s := range re.Sub {
			fs, ok := factorsOf(s)
			if !ok || len(all)+len(fs) > maxFactors {
				return nil, false
			}
			all = append(all, fs...)
		}
		return all, true
	case syntax.OpConcat:
		return concatFactors(re.Sub)
	}
	return nil, false
}

// concatFactors picks the best factored child of a concatenation: the
// one with the longest minimum literal (ties to the earliest) whose
// prefix is either byte-bounded within maxPreSpread (offsets shift) or
// a single star/plus of an ASCII single-byte class (backwalk). Every
// concat child is required, so any such child yields a sound factor
// set.
func concatFactors(subs []*syntax.Regexp) ([]litFactor, bool) {
	var best []litFactor
	bestLen := -1
	for i, s := range subs {
		fs, ok := factorsOf(s)
		if !ok {
			continue
		}
		preMin, preMax := 0, 0
		for _, p := range subs[:i] {
			lo, hi := byteLen(p)
			preMin += lo
			preMax = addCap(preMax, hi)
		}
		if preMax-preMin > maxPreSpread || preMax >= inf {
			// Unbounded prefix: try backwalk — exactly one star/plus
			// of an ASCII single-byte class before the factor (plus
			// any zero-width children), and the class must exclude
			// each factor's first byte so the walk is linear and
			// stops at the previous occurrence.
			cls := backwalkClass(subs[:i])
			if cls == nil {
				continue
			}
			ok := true
			for _, f := range fs {
				if f.minPre != 0 || f.maxPre != 0 || f.back != nil || cls[f.lit[0]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			bw := make([]litFactor, len(fs))
			for j, f := range fs {
				bw[j] = litFactor{lit: f.lit, back: cls}
			}
			fs = bw
		} else {
			for j := range fs {
				if fs[j].back != nil {
					ok = false
					break
				}
				fs[j].minPre += preMin
				fs[j].maxPre += preMax
				if fs[j].maxPre-fs[j].minPre > maxPreSpread {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		ml := minLitLen(fs)
		if ml > bestLen {
			best, bestLen = fs, ml
		}
	}
	return best, best != nil
}

func minLitLen(fs []litFactor) int {
	ml := inf
	for _, f := range fs {
		if len(f.lit) < ml {
			ml = len(f.lit)
		}
	}
	return ml
}

// backwalkClass accepts a prefix consisting of zero-width children and
// exactly one star/plus (or repeat) over an ASCII single-byte class,
// returning that class as a byte set.
func backwalkClass(prefix []*syntax.Regexp) *[256]bool {
	var cls *[256]bool
	for _, p := range prefix {
		if lo, hi := byteLen(p); lo == 0 && hi == 0 {
			continue
		}
		if cls != nil {
			return nil // more than one run
		}
		var inner *syntax.Regexp
		switch p.Op {
		case syntax.OpStar, syntax.OpPlus:
			inner = p.Sub[0]
		case syntax.OpRepeat:
			if p.Max >= 0 {
				return nil // bounded repeats are handled by offsets
			}
			inner = p.Sub[0]
		default:
			return nil
		}
		cls = asciiByteSet(inner)
		if cls == nil {
			return nil
		}
	}
	return cls
}

// asciiByteSet returns the byte set of a pure-ASCII single-rune class
// or literal, or nil.
func asciiByteSet(re *syntax.Regexp) *[256]bool {
	var set [256]bool
	switch re.Op {
	case syntax.OpCharClass:
		for i := 0; i < len(re.Rune); i += 2 {
			lo, hi := re.Rune[i], re.Rune[i+1]
			if hi >= 0x80 {
				return nil
			}
			for r := lo; r <= hi; r++ {
				set[byte(r)] = true
			}
		}
	case syntax.OpLiteral:
		if len(re.Rune) != 1 || re.Rune[0] >= 0x80 || re.Flags&syntax.FoldCase != 0 {
			return nil
		}
		set[byte(re.Rune[0])] = true
	default:
		return nil
	}
	return &set
}

// foldLiteral lowers an ASCII literal to its folded form for the AC
// trie. Case-sensitive literals are folded too: folding the haystack
// can only add occurrences, so the candidate set stays a superset.
func foldLiteral(re *syntax.Regexp) (string, bool) {
	b := make([]byte, 0, len(re.Rune))
	for _, r := range re.Rune {
		if r >= 0x80 {
			return "", false
		}
		b = append(b, foldTable[byte(r)])
	}
	return string(b), len(b) > 0
}

// classFactors turns a small ASCII class into one single-byte literal
// per distinct folded byte.
func classFactors(re *syntax.Regexp) ([]litFactor, bool) {
	n := 0
	var seen [256]bool
	fs := make([]litFactor, 0, maxClassLits)
	for i := 0; i < len(re.Rune); i += 2 {
		lo, hi := re.Rune[i], re.Rune[i+1]
		if hi >= 0x80 {
			return nil, false
		}
		for r := lo; r <= hi; r++ {
			n++
			if n > maxClassLits {
				return nil, false
			}
			b := foldTable[byte(r)]
			if !seen[b] {
				seen[b] = true
				fs = append(fs, litFactor{lit: string([]byte{b})})
			}
		}
	}
	return fs, len(fs) > 0
}

// boundaryHead reports whether the pattern is a concatenation headed
// only by zero-width ops including a \b, with every first rune a word
// rune — in which case a candidate match start must be preceded by a
// non-word byte (or text start), a one-byte precheck applied at emit
// time. only is false when the head shape is anything else.
func boundaryHead(re *syntax.Regexp) (needNW, only bool) {
	for re.Op == syntax.OpCapture {
		re = re.Sub[0]
	}
	if re.Op != syntax.OpConcat || len(re.Sub) == 0 {
		return false, true
	}
	head := re.Sub[0]
	for head.Op == syntax.OpCapture {
		head = head.Sub[0]
	}
	if head.Op != syntax.OpWordBoundary {
		return false, true
	}
	first, _, ok := firstBytes(re)
	if !ok {
		return false, true
	}
	for b := 0; b < 256; b++ {
		if first[b] && !isWordByte(byte(b)) {
			return false, true
		}
	}
	return true, true
}

// firstBytes computes the set of bytes a match can start with, and
// whether every path to the first rune crosses a \b with a word first
// rune (enabling the non-word-before precheck). ok is false when a
// first rune can be non-ASCII or the shape is unsupported.
func firstBytes(re *syntax.Regexp) (*[256]bool, bool, bool) {
	var set [256]bool
	nw := true
	sawBoundary := true
	var walk func(re *syntax.Regexp, afterB bool) (nullable bool, ok bool)
	walk = func(re *syntax.Regexp, afterB bool) (bool, bool) {
		switch re.Op {
		case syntax.OpLiteral:
			if len(re.Rune) == 0 {
				return true, true
			}
			return false, addFirstRune(&set, re.Rune[0], re.Flags&syntax.FoldCase != 0, afterB, &nw, &sawBoundary)
		case syntax.OpCharClass:
			for i := 0; i < len(re.Rune); i += 2 {
				for r := re.Rune[i]; r <= re.Rune[i+1]; r++ {
					if r >= 0x80 {
						return false, false
					}
					if !addFirstRune(&set, r, false, afterB, &nw, &sawBoundary) {
						return false, false
					}
				}
			}
			return false, true
		case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
			return false, false
		case syntax.OpCapture:
			return walk(re.Sub[0], afterB)
		case syntax.OpConcat:
			for _, s := range re.Sub {
				nullable, ok := walk(s, afterB)
				if !ok {
					return false, false
				}
				if !nullable {
					return false, true
				}
				if s.Op == syntax.OpWordBoundary {
					afterB = true
				}
			}
			return true, true
		case syntax.OpAlternate:
			nullable := false
			for _, s := range re.Sub {
				n, ok := walk(s, afterB)
				if !ok {
					return false, false
				}
				nullable = nullable || n
			}
			return nullable, true
		case syntax.OpQuest, syntax.OpStar:
			_, ok := walk(re.Sub[0], afterB)
			return true, ok
		case syntax.OpPlus:
			return walk(re.Sub[0], afterB)
		case syntax.OpRepeat:
			nullable, ok := walk(re.Sub[0], afterB)
			return nullable || re.Min == 0, ok
		case syntax.OpWordBoundary:
			return true, true
		case syntax.OpEmptyMatch, syntax.OpNoWordBoundary,
			syntax.OpBeginText, syntax.OpEndText:
			return true, true
		}
		return false, false
	}
	if _, ok := walk(re, false); !ok {
		return nil, false, false
	}
	return &set, nw && sawBoundary, true
}

// addFirstRune records r (and its folds) as a possible first byte.
// Returns false when a fold lands outside ASCII, which would make the
// byte scan miss match starts.
func addFirstRune(set *[256]bool, r rune, folded, afterB bool, nw, sawBoundary *bool) bool {
	add := func(r rune) bool {
		if r >= 0x80 {
			return false
		}
		set[byte(r)] = true
		if !afterB || !isWordByte(byte(r)) {
			// This start neither sits after a \b nor is a word rune,
			// so the non-word-before precheck would be unsound.
			*nw = false
		}
		if !afterB {
			*sawBoundary = false
		}
		return true
	}
	if !add(r) {
		return false
	}
	if folded {
		for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
			if !add(f) {
				return false
			}
		}
	}
	return true
}

func hasOp(re *syntax.Regexp, op syntax.Op) bool {
	if re.Op == op {
		return true
	}
	for _, s := range re.Sub {
		if hasOp(s, op) {
			return true
		}
	}
	return false
}

// startsWith reports whether every match necessarily begins with op at
// the head of the pattern (through captures/concats, and through
// alternations when every branch does).
func startsWith(re *syntax.Regexp, op syntax.Op) bool {
	switch re.Op {
	case op:
		return true
	case syntax.OpCapture:
		return startsWith(re.Sub[0], op)
	case syntax.OpConcat:
		return len(re.Sub) > 0 && startsWith(re.Sub[0], op)
	case syntax.OpAlternate:
		for _, s := range re.Sub {
			if !startsWith(s, op) {
				return false
			}
		}
		return len(re.Sub) > 0
	}
	return false
}
