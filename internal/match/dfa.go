package match

import (
	"encoding/binary"
	"regexp/syntax"
	"sort"
	"sync"
	"sync/atomic"
	"unicode"
	"unicode/utf8"
)

// dfa is a lazy byte-class DFA over a compiled regexp program,
// answering one question per candidate: does an anchored match exist
// starting here? It is an existence filter only — the exact span and
// submatches always come from the anchored stdlib probe — so "accept"
// may be approximate in exactly one direction (when the state budget
// is exhausted the DFA disables itself and accepts everything), while
// "reject" is always exact.
//
// States are RE2-style delayed-closure sets: the raw (un-closed)
// instruction set plus a prev-rune-is-word bit and a begin-of-text
// bit. Empty-width conditions (\b, \B, \A, \z) need the *next* rune,
// so closure happens at the start of each step, when the next rune's
// class is known.
type dfa struct {
	prog *syntax.Prog

	ascii      [128]uint16
	repr       []rune // representative rune per class
	numClasses int    // including high/longS/kelvin, excluding EOT
	clsHigh    uint16
	clsLongS   uint16
	clsKelvin  uint16
	clsEOT     uint16

	mu       sync.Mutex
	states   map[string]*dState
	nStates  int
	disabled atomic.Bool
	starts   [4]*dState // [bot<<1 | prevWord]
}

type dState struct {
	raw      []uint32
	prevWord bool
	bot      bool
	next     []atomic.Pointer[dState]
}

// Sentinel outcomes. They are never stepped, only compared.
var (
	dfaAccept = &dState{}
	dfaDead   = &dState{}
)

const maxDFAStates = 1 << 12

// compileDFA builds the DFA for a parsed pattern, or returns nil when
// the program uses a shape the DFA does not model (multiline anchors,
// non-ASCII case folding, partially-covered high-rune ranges). A nil
// DFA accepts everything, handing the decision to the probe.
func compileDFA(parsed *syntax.Regexp) *dfa {
	prog, err := syntax.Compile(parsed)
	if err != nil {
		return nil
	}
	d := &dfa{prog: prog, states: make(map[string]*dState)}

	// Byte-class alphabet: cuts at every ASCII range edge (and fold
	// orbit member) of every rune instruction, at the ASCII word-class
	// edges (so prevWord is uniform per class), and at '\n' (for
	// AnyCharNotNL). High runes collapse to one class — valid only if
	// every range covers all of [0x80, MaxRune] or none of it — with
	// the two fold traps U+017F and U+212A carved out as their own
	// classes since they also behave like 's'/'k' under folding.
	var cut [129]bool
	cut[0] = true
	cut[128] = true
	mark := func(lo, hi rune) { // rune range [lo,hi], ASCII part
		if lo < 128 {
			cut[lo] = true
		}
		if hi < 128 {
			cut[hi+1] = true
		}
	}
	for _, edge := range []rune{'0', '9' + 1, 'A', 'Z' + 1, '_', '_' + 1, 'a', 'z' + 1, '\n', '\n' + 1} {
		cut[edge] = true
	}
	for i := range prog.Inst {
		inst := &prog.Inst[i]
		switch inst.Op {
		case syntax.InstEmptyWidth:
			op := syntax.EmptyOp(inst.Arg)
			if op&^(syntax.EmptyWordBoundary|syntax.EmptyNoWordBoundary|syntax.EmptyBeginText|syntax.EmptyEndText) != 0 {
				return nil // (?m) anchors: unmodelled
			}
		case syntax.InstRune:
			if len(inst.Rune) == 1 {
				r := inst.Rune[0]
				if r >= 0x80 {
					return nil
				}
				mark(r, r)
				if syntax.Flags(inst.Arg)&syntax.FoldCase != 0 {
					for _, f := range asciiFolds(r) {
						mark(f, f)
					}
				}
				continue
			}
			for j := 0; j < len(inst.Rune); j += 2 {
				lo, hi := inst.Rune[j], inst.Rune[j+1]
				if hi >= 0x80 && !(lo <= 0x80 && hi >= utf8.MaxRune) {
					return nil // partial high coverage: class not uniform
				}
				mark(lo, hi)
			}
		case syntax.InstRune1:
			r := inst.Rune[0]
			if r >= 0x80 {
				return nil
			}
			mark(r, r)
			if syntax.Flags(inst.Arg)&syntax.FoldCase != 0 {
				for _, f := range asciiFolds(r) {
					mark(f, f)
				}
			}
		}
	}
	cls := uint16(0)
	for b := 0; b < 128; b++ {
		if cut[b] && b > 0 {
			cls++
		}
		d.ascii[b] = cls
	}
	// Representatives: first byte of each ASCII class.
	d.repr = make([]rune, cls+1)
	for b := 127; b >= 0; b-- {
		d.repr[d.ascii[b]] = rune(b)
	}
	n := int(cls) + 1
	d.clsHigh = uint16(n)
	d.clsLongS = uint16(n + 1)
	d.clsKelvin = uint16(n + 2)
	d.clsEOT = uint16(n + 3)
	d.repr = append(d.repr, 0x80, 0x017F, 0x212A)
	d.numClasses = n + 3

	for i := 0; i < 4; i++ {
		d.starts[i] = d.intern([]uint32{uint32(prog.Start)}, i&1 != 0, i&2 != 0)
	}
	return d
}

// asciiFolds returns the ASCII members of r's simple-fold orbit other
// than r itself. Orbit members outside ASCII (ſ, K) have dedicated
// classes and need no cuts.
func asciiFolds(r rune) []rune {
	fs := make([]rune, 0, 2)
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f < 0x80 {
			fs = append(fs, f)
		}
	}
	return fs
}

// accepts reports whether an anchored match of the pattern exists
// starting at text[c:]. The byte before c supplies the \b context —
// a continuation byte is a non-word byte exactly as its rune is a
// non-word rune, so the byte-level check agrees with the oracle.
func (d *dfa) accepts(text string, c int) bool {
	if d == nil || d.disabled.Load() {
		return true
	}
	idx := 0
	if c > 0 && isWordByte(text[c-1]) {
		idx = 1
	}
	if c == 0 {
		idx |= 2
	}
	s := d.starts[idx]
	for i := c; ; {
		var cls uint16
		sz := 0
		if i < len(text) {
			cls, sz = d.classOf(text, i)
		} else {
			cls = d.clsEOT
		}
		ns := s.next[cls].Load()
		if ns == nil {
			ns = d.step(s, cls)
			s.next[cls].Store(ns)
		}
		switch ns {
		case dfaAccept:
			return true
		case dfaDead:
			return false
		}
		if i >= len(text) {
			return false
		}
		if d.disabled.Load() {
			return true
		}
		s, i = ns, i+sz
	}
}

func (d *dfa) classOf(text string, i int) (uint16, int) {
	b := text[i]
	if b < 0x80 {
		return d.ascii[b], 1
	}
	r, sz := utf8.DecodeRuneInString(text[i:])
	switch r {
	case 0x017F:
		return d.clsLongS, sz
	case 0x212A:
		return d.clsKelvin, sz
	}
	// Invalid UTF-8 decodes to U+FFFD size 1 — the same rune the
	// oracle sees, and U+FFFD is covered by the uniform high class.
	return d.clsHigh, sz
}

// step computes the successor of s on input class cls: close s.raw
// under the empty-width flags the (prev, next) pair implies, accept if
// a match instruction is reached, otherwise advance every surviving
// rune instruction over the class representative.
func (d *dfa) step(s *dState, cls uint16) *dState {
	eot := cls == d.clsEOT
	var r rune = -1
	nextWord := false
	if !eot {
		r = d.repr[cls]
		nextWord = syntax.IsWordChar(r)
	}
	var flags syntax.EmptyOp
	if s.prevWord != nextWord {
		flags |= syntax.EmptyWordBoundary
	} else {
		flags |= syntax.EmptyNoWordBoundary
	}
	if s.bot {
		flags |= syntax.EmptyBeginText
	}
	if eot {
		flags |= syntax.EmptyEndText
	}

	stack := make([]uint32, 0, len(s.raw)*2)
	consuming := make([]uint32, 0, len(s.raw)*2)
	seen := make(map[uint32]bool, len(s.raw)*2)
	stack = append(stack, s.raw...)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		inst := &d.prog.Inst[pc]
		switch inst.Op {
		case syntax.InstAlt, syntax.InstAltMatch:
			stack = append(stack, inst.Out, inst.Arg)
		case syntax.InstCapture, syntax.InstNop:
			stack = append(stack, inst.Out)
		case syntax.InstEmptyWidth:
			if syntax.EmptyOp(inst.Arg)&^flags == 0 {
				stack = append(stack, inst.Out)
			}
		case syntax.InstMatch:
			return dfaAccept
		case syntax.InstFail:
		default: // InstRune, InstRune1, InstRuneAny, InstRuneAnyNotNL
			consuming = append(consuming, pc)
		}
	}
	if eot {
		return dfaDead
	}
	next := make([]uint32, 0, len(consuming))
	for _, pc := range consuming {
		inst := &d.prog.Inst[pc]
		if instMatchRune(inst, r) {
			next = append(next, inst.Out)
		}
	}
	if len(next) == 0 {
		return dfaDead
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	w := 1
	for i := 1; i < len(next); i++ {
		if next[i] != next[i-1] {
			next[w] = next[i]
			w++
		}
	}
	return d.intern(next[:w], nextWord, false)
}

// instMatchRune is Inst.MatchRune with the any-char ops special-cased:
// their Rune slice is nil, which MatchRune reports as "no match".
func instMatchRune(inst *syntax.Inst, r rune) bool {
	switch inst.Op {
	case syntax.InstRuneAny:
		return true
	case syntax.InstRuneAnyNotNL:
		return r != '\n'
	}
	return inst.MatchRune(r)
}

func (d *dfa) intern(raw []uint32, prevWord, bot bool) *dState {
	key := make([]byte, 1, len(raw)*4+1)
	if prevWord {
		key[0] |= 1
	}
	if bot {
		key[0] |= 2
	}
	for _, pc := range raw {
		key = binary.LittleEndian.AppendUint32(key, pc)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.states[string(key)]; ok {
		return st
	}
	if d.nStates >= maxDFAStates {
		// State explosion: permanently hand every decision to the
		// probe. Cached transitions to this accept are harmless —
		// accepts() re-checks the disabled flag anyway.
		d.disabled.Store(true)
		return dfaAccept
	}
	st := &dState{
		raw:      append([]uint32(nil), raw...),
		prevWord: prevWord,
		bot:      bot,
		next:     make([]atomic.Pointer[dState], d.numClasses+1),
	}
	d.states[string(key)] = st
	d.nStates++
	return st
}
