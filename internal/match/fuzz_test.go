package match_test

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// FuzzMatchEquivalence fuzzes arbitrary text against every zoo
// pattern, asserting the engine's FindAll/Match/Count agree with the
// stdlib oracle exactly. Seeds are the adversarial inputs plus real
// corpus text, mirroring the sanitize corpus-fuzz harness.
func FuzzMatchEquivalence(f *testing.F) {
	for _, s := range adversarialInputs {
		f.Add(s)
	}
	opts := corpus.DefaultEnronOptions()
	opts.Plain, opts.PerKind = 6, 2
	for _, d := range corpus.GenerateEnron(opts) {
		f.Add(d.Text)
	}
	msgs := corpus.Generate(corpus.DatasetTREC)
	for i := 0; i < 8 && i < len(msgs); i++ {
		f.Add(msgs[i].Msg.Text())
	}
	e := zooEngine(f)
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			return
		}
		for id := range zooPatterns {
			re := e.Oracle(id)
			want := oracleFindAll(re, text)
			got := allFindAll(e, id, text)
			if len(got)+len(want) > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("pattern %q on %q:\n engine %v\n oracle %v", re.String(), text, got, want)
			}
			s := e.Scan(text)
			if gm, wm := s.Match(id), re.MatchString(text); gm != wm {
				t.Fatalf("pattern %q Match on %q: engine %v oracle %v", re.String(), text, gm, wm)
			}
			if gc, wc := s.Count(id, 3), len(re.FindAllString(text, 3)); gc != wc {
				t.Fatalf("pattern %q Count on %q: engine %d oracle %d", re.String(), text, gc, wc)
			}
			s.Release()
		}
	})
}
