// Package match compiles many regexp patterns into a single shared
// scan pass. An Aho–Corasick prefilter over case-folded bytes proposes
// candidate start positions (from literal factors every match must
// contain), a lazy byte-class DFA confirms or rejects each candidate,
// and an anchored stdlib regexp supplies the exact span and submatches
// only where the DFA accepts. The stdlib regexp for each pattern stays
// compiled alongside as the differential oracle: by construction the
// candidate set is a superset of true match starts, candidates are
// visited in increasing order (so the leftmost match is found first),
// and the final span always comes from Go's own engine — so the output
// is byte-identical to a FindAll loop over the original pattern.
package match

// foldTable maps every byte to its ASCII case-folded form: A-Z fold to
// a-z, everything else is itself. Multi-byte fold traps (U+017F LATIN
// SMALL LETTER LONG S folds with 's', U+212A KELVIN SIGN folds with
// 'k') are handled by the symbol reader, not the table: their UTF-8
// encodings are recognised as units and emitted as the folded ASCII
// letter.
var foldTable [256]byte

func init() {
	for i := range foldTable {
		b := byte(i)
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		foldTable[i] = b
	}
}

// wordByte mirrors regexp/syntax.IsWordChar for single bytes: \b in Go
// regexps is ASCII-only, so any byte ≥ 0x80 (including every UTF-8
// continuation byte) is a non-word byte, exactly as the rune it belongs
// to is a non-word rune.
var wordByte [256]bool

func init() {
	for i := range wordByte {
		b := byte(i)
		wordByte[i] = b == '_' ||
			(b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
	}
}

func isWordByte(b byte) bool { return wordByte[b] }

// foldSym returns the case-folded symbol starting at text[i] and the
// number of bytes it consumes. The two Unicode simple-fold orbits that
// reach into ASCII are collapsed here so a folded literal containing
// 's' or 'k' still prefilters text spelled with U+017F or U+212A.
func foldSym(text string, i int) (sym byte, size int) {
	b := text[i]
	if b < 0x80 {
		return foldTable[b], 1
	}
	if b == 0xC5 && i+1 < len(text) && text[i+1] == 0xBF { // U+017F ſ
		return 's', 2
	}
	if b == 0xE2 && i+2 < len(text) && text[i+1] == 0x84 && text[i+2] == 0xAA { // U+212A K
		return 'k', 3
	}
	return b, 1
}
