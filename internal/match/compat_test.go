package match_test

import (
	"fmt"
	"reflect"
	"regexp"
	"testing"

	"repro/internal/corpus"
	"repro/internal/match"
)

// zooPatterns is every production pattern the engine will carry (the
// sanitizer's detectors and both spamfilter rule files) plus
// adversarial shapes aimed at the prefilter's edges: prefix-overlap
// literals, factors at shifted offsets, backwalk classes, fold traps,
// and fallback-only patterns.
var zooPatterns = []string{
	// sanitize detectors
	`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`,
	`\b(?:\d[ \-]?){13,19}\b`,
	`\b(\d{3})-(\d{2})-(\d{4})\b`,
	`\b(\d{2})-(\d{7})\b`,
	`(?i)\b(?:password|passwd|pwd|passphrase)\s*(?:is|:|=)?\s*(\S{3,})`,
	`\b[A-HJ-NPR-Za-hj-npr-z0-9]{17}\b`,
	`(?i)\b(?:username|user name|login|user id|userid)\s*(?:is|:|=)?\s*(\S{2,})`,
	`(?i)(?:\bzip(?:\s*code)?\s*(?:is|:|=)?\s*|,\s*[A-Z]{2}\s+)(\d{5}(?:-\d{4})?)\b`,
	`(?i)\b(?:id|identification|member|account|case|employee|record|mrn|policy)\s*(?:number|num|no\.?|#)?\s*(?:is|:|=)\s*([A-Za-z0-9\-]{4,})`,
	`(?:\+?1[\-. ]?)?(?:\(\d{3}\)\s?|\d{3}[\-. ])\d{3}[\-. ]\d{4}\b`,
	`(?i)\b(?:\d{1,2}[/\-]\d{1,2}[/\-]\d{2,4}|\d{4}-\d{2}-\d{2}|(?:jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2}(?:st|nd|rd|th)?,?\s+\d{4})\b`,
	// spamfilter scorer
	`(?i)\b(click here|limited time|act now|no obligation|100% free|risk free|money back|order now|this is not spam|dear friend|claim your prize|winner|lowest prices|online pharmacy|work from home|extra income|no experience|viagra|cheap meds|hot singles|no prescription|make \$\d+)\b`,
	`\$\d+(?:[.,]\d{2})?`,
	`https?://[^\s]+`,
	`(?i)(?:@|https?://)[^\s@/]*\.(?:ru|cn|biz|info)\b`,
	// spamfilter funnel
	`(?i)\b(unsubscribe|remove yourself|manage your (?:email )?preferences|update your subscription|you are receiving this|opt[ -]?out)\b`,
	`(?i)\b(bounce|unsubscribe|no-?reply|donotreply|mailer-daemon|notifications?)\b`,
	`(?i)^(postmaster|root|admin|administrator|mailer-daemon|daemon|nobody|www-data)@`,
	// adversarial zoo
	`abab(ab)*c`,            // prefix-overlap literal
	`(?i)ss+n`,              // fold-trap literal with plus
	`(?i)kelvin`,            // U+212A trap at offset 0
	`x[ab]{0,8}yz`,          // factor at a spread offset window
	`[0-9]+-[0-9]+`,         // backwalk-shaped with digit class
	`(a|bb)cc\b`,            // branch factors with differing offsets
	`\bword\b`,              // pure boundary behaviour
	`z*`,                    // empty-match capable: fallback path
	`(?s).end`,              // no factor, any-char head: fallback/firstbyte edge
	`(?i)(alpha|beta)\s=\d`, // mixed literal/class tail
}

// adversarialInputs stresses exactly the edges the prefilter bends
// around: Unicode fold traps, NUL and high bytes, invalid UTF-8,
// matches at both text boundaries, overlapping literal occurrences,
// and near-miss boundary contexts.
var adversarialInputs = []string{
	"",
	"password is hunter2, username: jdoe",
	"pa\u017Fsword is hunter2",          // U+017F inside keyword
	"u\u017Fername is jdoe",             // trap at offset 1
	"\u212Aelvin and kelvin and KELVIN", // U+212A trap
	"\u017F\u017F\u017Fn",               // folded run hitting ss+n
	"card 4111 1111 1111 1111 and ssn 078-05-1120",
	"ssn 078-05-1120.",
	"078-05-1120",            // match at begin and end of text
	"x078-05-1120y",          // boundary near-miss
	"a@b.co",                 // minimal email at boundaries
	"joe@ex.com jane@ex.org", // multiple matches, backwalk
	"@@@@a@b.cc@d.ee",        // pathological backwalk anchors
	"call 412-268-3000 now",  // phone
	"(412) 268 3000",         // phone alt branch
	"dec 14, 2016 and 12/14/2016 and 2016-12-14",
	"d\u00e9c 14, 2016 total 1234",
	"abababababc",              // overlapping prefix literal
	"ababc abab ababababc",     // partial overlaps
	"xyz xayz xabababyz xabby", // spread-offset factor
	"a\x00b password\x00is\x00secret123",
	"\x80\xfe\xffpassword is \xc3\x28 bad utf8",
	"make $500 fast! click here http://spam.example.ru/x",
	"visit https://a.b.info\u212A now", // trap directly after TLD
	"unsubscribe at no-reply@host or NOREPLY",
	"postmaster@example.com",
	"not postmaster@example.com", // BOT pattern must not match mid-text
	"winner winner dear friend, 100% free viagra, act now",
	"id = 12345678 and account number is AB-9912",
	"zip code 15213-0001, PA 15213",
	"1HGCM82633A004352 vin maybe",
	"word sword words word",
	"acc bbcc abcc",
	"zzzzz",
	"ends in .end",
	"alpha =5 BETA\t=9",
}

func allFindAll(e *match.Engine, id int, text string) [][]int {
	var got [][]int
	s := e.Scan(text)
	s.FindAll(id, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	s.Release()
	return got
}

// oracleFindAll is the reference semantics the engine promises:
// the stdlib's own FindAll loop over the unmodified pattern.
func oracleFindAll(re *regexp.Regexp, text string) [][]int {
	return re.FindAllStringSubmatchIndex(text, -1)
}

func checkPattern(t *testing.T, e *match.Engine, id int, text string) {
	t.Helper()
	re := e.Oracle(id)
	want := oracleFindAll(re, text)
	got := allFindAll(e, id, text)
	if len(want) == 0 && len(got) == 0 {
		// reflect.DeepEqual(nil, [][]int{}) is false; both empty is equal.
	} else if !reflect.DeepEqual(got, want) {
		t.Errorf("pattern %q (%s) on %q:\n engine %v\n oracle %v",
			re.String(), e.Mode(id), text, got, want)
	}
	s := e.Scan(text)
	defer s.Release()
	if gm, wm := s.Match(id), re.MatchString(text); gm != wm {
		t.Errorf("pattern %q Match on %q: engine %v oracle %v", re.String(), text, gm, wm)
	}
	for _, max := range []int{-1, 1, 2, 3} {
		if gc, wc := s.Count(id, max), len(re.FindAllString(text, max)); gc != wc {
			t.Errorf("pattern %q Count(%d) on %q: engine %d oracle %d", re.String(), max, text, gc, wc)
		}
	}
}

func zooEngine(t testing.TB) *match.Engine {
	e, err := match.Compile(zooPatterns)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCompatAdversarial(t *testing.T) {
	e := zooEngine(t)
	for id := range zooPatterns {
		for _, text := range adversarialInputs {
			checkPattern(t, e, id, text)
		}
	}
}

// TestCompatCorpus replays every pattern against the oracle over real
// corpus text: the Table 2 Enron docs and a slice of every Table 3
// dataset's messages.
func TestCompatCorpus(t *testing.T) {
	e := zooEngine(t)
	var texts []string
	opts := corpus.DefaultEnronOptions()
	opts.Plain, opts.PerKind = 60, 6
	for _, d := range corpus.GenerateEnron(opts) {
		texts = append(texts, d.Text, d.Subject)
	}
	for _, ds := range corpus.AllDatasets() {
		msgs := corpus.Generate(ds)
		for i := 0; i < len(msgs) && i < 80; i++ {
			m := msgs[i].Msg
			texts = append(texts, m.Text(), m.Subject(), m.From())
		}
	}
	for id := range zooPatterns {
		for _, text := range texts {
			checkPattern(t, e, id, text)
		}
	}
}

// TestMatchDeterminism pins that repeated scans — same handle
// re-obtained, fresh handles, and a freshly compiled engine — produce
// identical match sequences in identical order.
func TestMatchDeterminism(t *testing.T) {
	e1 := zooEngine(t)
	e2 := zooEngine(t)
	for id := range zooPatterns {
		for _, text := range adversarialInputs {
			a := allFindAll(e1, id, text)
			b := allFindAll(e1, id, text)
			c := allFindAll(e2, id, text)
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
				t.Fatalf("pattern %d on %q: non-deterministic match order", id, text)
			}
		}
	}
}

// TestLeftmostSemantics pins the leftmost contract: the first yielded
// match equals the oracle's leftmost match, and successive matches are
// non-overlapping in increasing order.
func TestLeftmostSemantics(t *testing.T) {
	e := zooEngine(t)
	for id := range zooPatterns {
		re := e.Oracle(id)
		for _, text := range adversarialInputs {
			got := allFindAll(e, id, text)
			if first := re.FindStringSubmatchIndex(text); first != nil {
				if len(got) == 0 || !reflect.DeepEqual(got[0], first) {
					t.Fatalf("pattern %q on %q: first match %v, oracle leftmost %v",
						re.String(), text, got, first)
				}
			} else if len(got) != 0 {
				t.Fatalf("pattern %q on %q: engine found %v, oracle none", re.String(), text, got)
			}
			prevEnd := 0
			for _, m := range got {
				if m[0] < prevEnd {
					t.Fatalf("pattern %q on %q: overlapping/out-of-order matches %v", re.String(), text, got)
				}
				prevEnd = m[1]
			}
		}
	}
}

// TestZooModes pins which production patterns actually exercise each
// prefilter strategy, so a refactor can't silently demote the hot
// patterns to the fallback path.
func TestZooModes(t *testing.T) {
	e := zooEngine(t)
	wantPrefix := map[int]string{
		0:  "factors", // email: backwalk from '@'
		1:  "firstbyte",
		2:  "factors",
		4:  "factors",
		5:  "firstbyte",
		9:  "factors", // phone: '(' and separator-class factors at bounded offsets
		10: "factors",
		11: "factors",
		12: "factors",
		13: "factors",
		14: "factors",
		15: "factors",
		16: "factors",
		17: "bot",
	}
	for id, want := range wantPrefix {
		if got := e.Mode(id); got != want {
			t.Errorf("pattern %d (%s): mode %s, want %s", id, zooPatterns[id], got, want)
		}
	}
	if got := e.Mode(25); got != "fallback" { // z*: empty match capable
		t.Errorf("z* mode %s, want fallback", got)
	}
}

func ExampleEngine_modes() {
	e := match.MustCompile(
		`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`,
		`\b(?:\d[ \-]?){13,19}\b`,
	)
	fmt.Println(e.Mode(0), e.Mode(1))
	// Output: factors firstbyte
}
