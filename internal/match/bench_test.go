package match_test

import (
	"strings"
	"testing"

	"repro/internal/match"
)

var benchText = strings.Repeat(
	"Dear friend, your order #4411 shipped 12/14/2016 to jane.doe@example.com. "+
		"Call (412) 268-3000 or visit https://example.com/track?id=99 for status. "+
		"This is not spam; click here to unsubscribe, or reply STOP. "+
		"Invoice total $129.99, account number is AC-277812, zip code 15213. ",
	8)

// BenchmarkMatchCompile measures full engine construction: parsing,
// factor extraction, AC build, DFA alphabets and probe compilation for
// the whole production pattern set.
func BenchmarkMatchCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := match.Compile(zooPatterns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchScan measures one shared scan plus a Count query per
// pattern. cold pays lazy-DFA state construction on a fresh engine
// every iteration; warm reuses one engine whose DFA transitions and
// pooled handles are already hot — the steady state the sanitizer and
// spamfilter run in.
func BenchmarkMatchScan(b *testing.B) {
	// Query the production patterns (sanitizer + spamfilter) only: the
	// adversarial zoo tail includes deliberate fallback shapes like z*
	// whose oracle cost would swamp the engine's.
	const numProd = 18
	scanAll := func(e *match.Engine) int {
		s := e.Scan(benchText)
		n := 0
		for id := 0; id < numProd; id++ {
			n += s.Count(id, -1)
		}
		s.Release()
		return n
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := match.Compile(zooPatterns)
			if err != nil {
				b.Fatal(err)
			}
			scanAll(e)
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := zooEngine(b)
		scanAll(e)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scanAll(e)
		}
	})
}
