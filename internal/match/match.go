package match

import (
	"fmt"
	"regexp"
	"regexp/syntax"
	"sort"
	"sync"
)

// Engine holds a set of compiled patterns sharing one prefilter pass.
// An Engine is immutable after Compile and safe for concurrent use;
// per-text state lives in pooled Scan handles.
type Engine struct {
	pats []*pat
	ac   *acAuto
	lits []acLitMeta
	pool sync.Pool
}

// acLitMeta ties one AC literal back to its pattern: where the match
// start sits relative to the literal (offset window or backwalk class)
// and whether a non-word byte must precede the start.
type acLitMeta struct {
	pat            int32
	minPre, maxPre int32
	back           *[256]bool
	first          *[256]bool // bytes a match can start with, or nil
	needNW         bool
}

type pat struct {
	src    string
	mode   int
	re     *regexp.Regexp // the oracle: the pattern exactly as given
	re0    *regexp.Regexp // \A(?:src) — anchored probe at a candidate
	reCtx  *regexp.Regexp // (?s)\A.(?:src) — probe with one context byte for \b
	d      *dfa
	first  *[256]bool
	needNW bool
}

// Compile builds an engine over the given patterns. Pattern indices in
// the returned engine follow the argument order. Each pattern is also
// compiled with the stdlib as the differential oracle; Compile fails
// if any pattern fails stdlib compilation.
func Compile(patterns []string) (*Engine, error) {
	e := &Engine{}
	lits := make([]string, 0, 4*len(patterns))
	for id, src := range patterns {
		//repolint:allow allochot compiling each pattern once is Compile's whole job; the loop is per-pattern, not per-scan
		re, err := regexp.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("match: pattern %d: %w", id, err)
		}
		parsed, err := syntax.Parse(src, syntax.Perl)
		if err != nil {
			return nil, fmt.Errorf("match: pattern %d: %w", id, err)
		}
		sim := parsed.Simplify()
		a := analyze(sim)
		p := &pat{src: src, mode: a.mode, re: re}
		if a.mode != modeFallback {
			//repolint:allow allochot the anchored probe variants are built once per pattern at compile time
			p.re0, err = regexp.Compile(`\A(?:` + src + `)`)
			if err == nil {
				//repolint:allow allochot the anchored probe variants are built once per pattern at compile time
				p.reCtx, err = regexp.Compile(`(?s)\A.(?:` + src + `)`)
			}
			if err != nil {
				// A pattern the stdlib accepts bare but not wrapped
				// (should not happen): keep it on the oracle path.
				p.mode, p.re0, p.reCtx = modeFallback, nil, nil
			} else {
				p.d = compileDFA(sim)
			}
		}
		switch p.mode {
		case modeFactors:
			for _, f := range a.factors {
				lits = append(lits, f.lit)
				e.lits = append(e.lits, acLitMeta{
					pat:    int32(id),
					minPre: int32(f.minPre),
					maxPre: int32(f.maxPre),
					back:   f.back,
					first:  a.firstSet,
					needNW: f.needNW,
				})
			}
		case modeFirstByte:
			p.first, p.needNW = a.first, a.needNW
		}
		e.pats = append(e.pats, p)
	}
	if len(lits) > 0 {
		e.ac = buildAC(lits)
	}
	e.pool.New = func() any { return e.newScan() }
	return e, nil
}

// MustCompile is Compile panicking on error, for package-level engines
// over constant pattern sets.
func MustCompile(patterns ...string) *Engine {
	e, err := Compile(patterns)
	if err != nil {
		panic(err)
	}
	return e
}

// Oracle returns the stdlib regexp for pattern id — the reference the
// engine is proven equivalent to.
func (e *Engine) Oracle(id int) *regexp.Regexp { return e.pats[id].re }

// Mode reports the scan strategy chosen for pattern id, for tests that
// pin which patterns actually exercise the prefilter.
func (e *Engine) Mode(id int) string {
	switch e.pats[id].mode {
	case modeFactors:
		return "factors"
	case modeFirstByte:
		return "firstbyte"
	case modeBOT:
		return "bot"
	}
	return "fallback"
}

// Scan is a per-text query handle. It is cheap to obtain (pooled) and
// holds the candidate positions the shared AC pass produced for every
// pattern. A Scan must not be used concurrently; Engines may run many
// Scans in parallel.
type Scan struct {
	e     *Engine
	text  string
	ring  []int32
	cands [][]int32
	ready []bool
}

func (e *Engine) newScan() *Scan {
	ringSize := 1
	if e.ac != nil {
		ringSize = e.ac.ringSize
	}
	return &Scan{
		e:     e,
		ring:  make([]int32, ringSize),
		cands: make([][]int32, len(e.pats)),
		ready: make([]bool, len(e.pats)),
	}
}

// Scan runs the shared prefilter pass once over text and returns a
// handle answering FindAll/Match/Count for every pattern.
func (e *Engine) Scan(text string) *Scan {
	s := e.pool.Get().(*Scan)
	s.text = text
	for i := range s.cands {
		s.cands[i] = s.cands[i][:0]
		s.ready[i] = false
	}
	if e.ac != nil {
		e.ac.scan(text, s)
	}
	return s
}

// Release returns the handle to the pool; the handle must not be used
// afterwards.
func (s *Scan) Release() {
	s.text = ""
	s.e.pool.Put(s)
}

// emit records the candidate start position(s) implied by one literal
// occurrence. Called from the AC scan loop.
func (s *Scan) emit(lit, start int32) {
	m := &s.e.lits[lit]
	text := s.text
	if m.back != nil {
		// Walk left over the unbounded prefix class. Linear overall:
		// Compile guarantees the class excludes the literal's first
		// byte, so the walk stops at the previous occurrence.
		q := start
		for q > 0 && m.back[text[q-1]] {
			q--
		}
		if m.first != nil && !m.first[text[q]] {
			return
		}
		s.cands[m.pat] = append(s.cands[m.pat], q)
		return
	}
	hi := start - m.minPre
	if hi < 0 {
		return
	}
	lo := start - m.maxPre
	if lo < 0 {
		lo = 0
	}
	for q := lo; q <= hi; q++ {
		if m.first != nil && !m.first[text[q]] {
			continue
		}
		if m.needNW && q > 0 && isWordByte(text[q-1]) {
			continue
		}
		s.cands[m.pat] = append(s.cands[m.pat], q)
	}
}

// prepare finalises the candidate list for pattern id: first-byte
// patterns scan lazily (they are usually behind caller-side gates),
// factor patterns sort and dedup what the AC pass emitted.
func (s *Scan) prepare(id int) []int32 {
	if s.ready[id] {
		return s.cands[id]
	}
	s.ready[id] = true
	p := s.e.pats[id]
	switch p.mode {
	case modeFirstByte:
		text := s.text
		c := s.cands[id][:0]
		for i := 0; i < len(text); i++ {
			if p.first[text[i]] {
				if p.needNW && i > 0 && isWordByte(text[i-1]) {
					continue
				}
				c = append(c, int32(i))
			}
		}
		s.cands[id] = c
	case modeBOT:
		s.cands[id] = append(s.cands[id][:0], 0)
	case modeFactors:
		c := s.cands[id]
		sorted := true
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		}
		w := 0
		for i := 0; i < len(c); i++ {
			if w == 0 || c[i] != c[w-1] {
				c[w] = c[i]
				w++
			}
		}
		s.cands[id] = c[:w]
	}
	return s.cands[id]
}

// FindAll calls yield with the submatch index slice (as from
// FindStringSubmatchIndex) of every non-overlapping match of pattern
// id, leftmost first — the same sequence a FindAll loop over the
// oracle produces. The slice is only valid during the call. Returning
// false from yield stops the iteration early.
func (s *Scan) FindAll(id int, yield func(idx []int) bool) {
	p := s.e.pats[id]
	text := s.text
	if p.mode == modeFallback {
		for _, idx := range p.re.FindAllStringSubmatchIndex(text, -1) {
			if !yield(idx) {
				return
			}
		}
		return
	}
	resume := 0
	for _, c32 := range s.prepare(id) {
		c := int(c32)
		if c < resume {
			continue
		}
		if !p.d.accepts(text, c) {
			continue
		}
		idx := s.probe(p, c)
		if idx == nil {
			continue
		}
		if !yield(idx) {
			return
		}
		resume = idx[1]
		if resume <= c {
			resume = c + 1
		}
	}
}

// Match reports whether pattern id matches anywhere in the text, like
// Oracle(id).MatchString.
func (s *Scan) Match(id int) bool {
	p := s.e.pats[id]
	if p.mode == modeFallback {
		return p.re.MatchString(s.text)
	}
	for _, c32 := range s.prepare(id) {
		c := int(c32)
		if !p.d.accepts(s.text, c) {
			continue
		}
		if s.probeEnd(p, c) >= 0 {
			return true
		}
	}
	return false
}

// Count returns the number of non-overlapping matches of pattern id,
// capped at max (max < 0 means unlimited): exactly
// len(Oracle(id).FindAllString(text, max)).
func (s *Scan) Count(id, max int) int {
	if max == 0 {
		return 0
	}
	p := s.e.pats[id]
	text := s.text
	if p.mode == modeFallback {
		return len(p.re.FindAllStringIndex(text, max))
	}
	n, resume := 0, 0
	for _, c32 := range s.prepare(id) {
		c := int(c32)
		if c < resume {
			continue
		}
		if !p.d.accepts(text, c) {
			continue
		}
		end := s.probeEnd(p, c)
		if end < 0 {
			continue
		}
		n++
		if max >= 0 && n >= max {
			break
		}
		resume = end
		if resume <= c {
			resume = c + 1
		}
	}
	return n
}

// probe runs the anchored stdlib pattern at candidate c and maps the
// submatch indices back into text coordinates. When the byte before c
// is an ASCII word byte the probe includes it (consumed by the leading
// `.`), preserving \b context; otherwise anchoring at c is exact —
// after a non-word rune, \b and \B reduce to the same "is the next
// rune a word rune" test they perform at begin-of-text.
func (s *Scan) probe(p *pat, c int) []int {
	text := s.text
	if c > 0 && isWordByte(text[c-1]) {
		idx := p.reCtx.FindStringSubmatchIndex(text[c-1:])
		if idx == nil {
			return nil
		}
		for k := range idx {
			if idx[k] >= 0 {
				idx[k] += c - 1
			}
		}
		idx[0] = c
		return idx
	}
	idx := p.re0.FindStringSubmatchIndex(text[c:])
	if idx == nil {
		return nil
	}
	for k := range idx {
		if idx[k] >= 0 {
			idx[k] += c
		}
	}
	return idx
}

// probeEnd is probe without submatches: the match end offset, or -1.
func (s *Scan) probeEnd(p *pat, c int) int {
	text := s.text
	if c > 0 && isWordByte(text[c-1]) {
		loc := p.reCtx.FindStringIndex(text[c-1:])
		if loc == nil {
			return -1
		}
		return c - 1 + loc[1]
	}
	loc := p.re0.FindStringIndex(text[c:])
	if loc == nil {
		return -1
	}
	return c + loc[1]
}
