package match

// acAuto is a dense Aho–Corasick automaton over case-folded symbols.
// The haystack is read through foldSym, so a literal spelled "sep"
// also fires on "SEP" and on "ſep" (U+017F) — folding at scan time
// keeps the literal set small and the candidate set a superset of
// every spelling the oracle can match.
type acAuto struct {
	next      [][256]int32 // full goto function, failure links resolved
	out       [][]int32    // literal IDs recognised at each state (suffixes merged)
	litSymLen []int32      // length of each literal in symbols
	ringSize  int          // power-of-two window covering the longest literal
}

type acNode struct {
	child [256]int32
	fail  int32
	out   []int32
}

func newAcNode() *acNode {
	n := &acNode{}
	for i := range n.child {
		n.child[i] = -1
	}
	return n
}

func buildAC(lits []string) *acAuto {
	a := &acAuto{}
	nodes := []*acNode{newAcNode()}
	maxLen := 1
	for id, lit := range lits {
		a.litSymLen = append(a.litSymLen, int32(len(lit)))
		if len(lit) > maxLen {
			maxLen = len(lit)
		}
		st := int32(0)
		for i := 0; i < len(lit); i++ {
			c := lit[i]
			if nodes[st].child[c] < 0 {
				nodes = append(nodes, newAcNode())
				nodes[st].child[c] = int32(len(nodes) - 1)
			}
			st = nodes[st].child[c]
		}
		nodes[st].out = append(nodes[st].out, int32(id))
	}
	a.ringSize = 1
	for a.ringSize < maxLen+1 {
		a.ringSize <<= 1
	}

	// BFS failure links, resolving the goto function to a total
	// transition table and merging suffix outputs as we go.
	queue := make([]int32, 0, len(nodes))
	for c := 0; c < 256; c++ {
		if ch := nodes[0].child[c]; ch >= 0 {
			nodes[ch].fail = 0
			queue = append(queue, ch)
		} else {
			nodes[0].child[c] = 0
		}
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		f := nodes[st].fail
		nodes[st].out = append(nodes[st].out, nodes[f].out...)
		for c := 0; c < 256; c++ {
			if ch := nodes[st].child[c]; ch >= 0 {
				nodes[ch].fail = nodes[f].child[c]
				queue = append(queue, ch)
			} else {
				nodes[st].child[c] = nodes[f].child[c]
			}
		}
	}

	a.next = make([][256]int32, len(nodes))
	a.out = make([][]int32, len(nodes))
	for i, n := range nodes {
		a.next[i] = n.child
		a.out[i] = n.out
	}
	return a
}

// scan runs the automaton once over text, reporting every literal
// occurrence to s.emit with the byte offset of the literal's first
// symbol. A ring buffer of recent symbol start offsets recovers the
// start of multi-symbol literals even when folded symbols span 2–3
// bytes (the U+017F / U+212A traps).
func (a *acAuto) scan(text string, s *Scan) {
	ring := s.ring
	mask := int32(len(ring) - 1)
	st := int32(0)
	symIdx := int32(0)
	for i := 0; i < len(text); {
		sym, sz := foldSym(text, i)
		ring[symIdx&mask] = int32(i)
		st = a.next[st][sym]
		if outs := a.out[st]; len(outs) > 0 {
			for _, lit := range outs {
				s.emit(lit, ring[(symIdx-a.litSymLen[lit]+1)&mask])
			}
		}
		symIdx++
		i += sz
	}
}
