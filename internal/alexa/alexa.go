// Package alexa is the stand-in for the Alexa Web Information Service
// the paper leans on throughout: top-1M domain rankings (the gtypo
// universe of Section 5.1), the email-category ranks that picked the
// study's target domains, per-domain monthly visitor estimates (the
// regression's E_i feature), and the relative traffic of registered typo
// domains by mistake type (Figure 9's input).
//
// The universe is synthetic but shape-faithful: Zipf-ranked traffic, a
// heavy tail, and per-mistake-type typo traffic weights in which deletion
// and transposition mistakes dominate addition and substitution — the
// paper's headline Figure 9 observation.
package alexa

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/distance"
	"repro/internal/par"
)

// Domain is one ranked domain.
type Domain struct {
	Name            string
	Rank            int     // global rank, 1-based
	EmailRank       int     // rank within the email category; 0 = not listed
	MonthlyVisitors float64 // modeled unique visitors per month
}

// EmailProviders are the study's target domains with their synthetic
// email-category ranks, mirroring Section 4.2.1's registration strategy:
// top webmail providers, second-tier providers, disposable-address
// services, ISPs with SMTP service, and financial domains.
var EmailProviders = []struct {
	Name      string
	EmailRank int
}{
	{"gmail.com", 1},
	{"outlook.com", 2},
	{"hotmail.com", 3},
	{"yahoo.com", 4},
	{"aol.com", 5},
	{"mail.com", 6},
	{"icloud.com", 7},
	{"gmx.com", 8},
	{"zoho.com", 9},
	{"rediffmail.com", 10},
	{"hushmail.com", 11},
	{"mailchimp.com", 12},
	{"sendgrid.com", 13},
	{"10minutemail.com", 14},
	{"yopmail.com", 15},
	{"comcast.com", 16},
	{"verizon.com", 17},
	{"att.com", 18},
	{"cox.com", 19},
	{"twc.com", 20},
	{"paypal.com", 21},
	{"chase.com", 22},
}

// Universe is the ranked domain list.
type Universe struct {
	domains []Domain
	byName  map[string]*Domain
}

// zipfAlpha shapes the traffic distribution; ~1 matches web traffic.
const zipfAlpha = 1.05

// topVisitors anchors rank 1's monthly visitors.
const topVisitors = 2.0e9

// NewUniverse builds a deterministic n-domain universe. The email
// providers above occupy their (synthetic) global ranks near the top;
// remaining ranks get generated pronounceable names.
func NewUniverse(n int, seed int64) *Universe {
	rng := par.Rand(seed, 0)
	u := &Universe{byName: make(map[string]*Domain, n)}
	used := map[string]bool{}

	// Pin the email providers to spread over the top ranks: provider with
	// email rank k sits at global rank ~3k-2 (popular email services are
	// popular sites, interleaved with non-email giants).
	pinned := map[int]Domain{}
	for _, p := range EmailProviders {
		rank := 3*p.EmailRank - 2
		if rank > n {
			continue
		}
		pinned[rank] = Domain{Name: p.Name, Rank: rank, EmailRank: p.EmailRank}
		used[p.Name] = true
	}
	for rank := 1; rank <= n; rank++ {
		d, ok := pinned[rank]
		if !ok {
			name := genName(rng, used)
			d = Domain{Name: name, Rank: rank}
			used[name] = true
		}
		d.MonthlyVisitors = Visitors(rank)
		u.domains = append(u.domains, d)
	}
	for i := range u.domains {
		u.byName[u.domains[i].Name] = &u.domains[i]
	}
	return u
}

// Visitors models monthly unique visitors at a global rank.
func Visitors(rank int) float64 {
	if rank < 1 {
		return 0
	}
	return topVisitors / math.Pow(float64(rank), zipfAlpha)
}

// Len returns the universe size.
func (u *Universe) Len() int { return len(u.domains) }

// Top returns the k highest-ranked domains.
func (u *Universe) Top(k int) []Domain {
	if k > len(u.domains) {
		k = len(u.domains)
	}
	return append([]Domain(nil), u.domains[:k]...)
}

// Lookup finds a domain by name.
func (u *Universe) Lookup(name string) (Domain, bool) {
	d, ok := u.byName[strings.ToLower(name)]
	if !ok {
		return Domain{}, false
	}
	return *d, true
}

// EmailCategory returns domains listed in the email category, by email
// rank — the list Section 4.2.1's registration strategy starts from.
func (u *Universe) EmailCategory() []Domain {
	out := make([]Domain, 0, len(u.domains))
	for _, d := range u.domains {
		if d.EmailRank > 0 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EmailRank < out[j].EmailRank })
	return out
}

// All returns every domain in rank order.
func (u *Universe) All() []Domain { return append([]Domain(nil), u.domains...) }

// genName emits a pronounceable unused second-level name.
func genName(rng *rand.Rand, used map[string]bool) string {
	const consonants = "bcdfghjklmnpqrstvwz"
	const vowels = "aeiou"
	for {
		var sb strings.Builder
		syllables := 2 + rng.Intn(3)
		for i := 0; i < syllables; i++ {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
			sb.WriteByte(vowels[rng.Intn(len(vowels))])
			if rng.Float64() < 0.3 {
				sb.WriteByte(consonants[rng.Intn(len(consonants))])
			}
		}
		sb.WriteString(".com")
		name := sb.String()
		if !used[name] {
			return name
		}
	}
}

// ---------------------------------------------------------------------
// Typo-domain traffic (Figure 9's substrate)

// MistakeWeight is the relative frequency of each DL-1 mistake class, as
// the paper measures from AWIS traffic of typo domains: deletion and
// transposition mistakes are roughly an order of magnitude more frequent
// than addition and substitution.
func MistakeWeight(op distance.EditOp) float64 {
	switch op {
	case distance.OpDeletion:
		return 1.00
	case distance.OpTransposition:
		return 0.75
	case distance.OpSubstitution:
		return 0.11
	case distance.OpAddition:
		return 0.07
	default:
		return 0.05
	}
}

// TypoTraffic samples the AWIS-style relative popularity of a registered
// typo domain: proportional to the target's traffic, scaled by the
// mistake class, discounted by how visible the typo is, with log-normal
// noise. Deterministic given rng.
func TypoTraffic(target Domain, op distance.EditOp, visual float64, rng *rand.Rand) float64 {
	base := target.MonthlyVisitors * 2e-6 // a few visits per million intended
	w := MistakeWeight(op)
	// Visible typos get corrected before the visit: exponential discount.
	vis := math.Exp(-2.5 * visual)
	noise := math.Exp(rng.NormFloat64() * 0.6)
	return base * w * vis * noise
}

// RelativePopularity normalizes a typo domain's traffic against its
// target's — AWIS's "relative popularity" that Figure 9 plots per
// mistake class.
func RelativePopularity(typoTraffic float64, target Domain) float64 {
	if target.MonthlyVisitors == 0 {
		return 0
	}
	return typoTraffic / (target.MonthlyVisitors * 2e-6)
}

func (d Domain) String() string {
	return fmt.Sprintf("#%d %s (email #%d, %.3g visitors/mo)", d.Rank, d.Name, d.EmailRank, d.MonthlyVisitors)
}
