package alexa

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/stats"
)

func TestUniverseBasics(t *testing.T) {
	u := NewUniverse(1000, 1)
	if u.Len() != 1000 {
		t.Fatalf("Len = %d", u.Len())
	}
	all := u.All()
	for i, d := range all {
		if d.Rank != i+1 {
			t.Fatalf("rank %d at index %d", d.Rank, i)
		}
		if d.MonthlyVisitors <= 0 {
			t.Fatalf("domain %s has no traffic", d.Name)
		}
		if i > 0 && all[i].MonthlyVisitors > all[i-1].MonthlyVisitors {
			t.Fatalf("traffic not monotone at rank %d", d.Rank)
		}
	}
}

func TestUniverseDeterministic(t *testing.T) {
	a, b := NewUniverse(500, 7), NewUniverse(500, 7)
	for i := range a.All() {
		if a.All()[i].Name != b.All()[i].Name {
			t.Fatal("universe not deterministic")
		}
	}
	c := NewUniverse(500, 8)
	same := 0
	for i := range a.All() {
		if a.All()[i].Name == c.All()[i].Name {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds gave identical universes")
	}
}

func TestUniverseNoDuplicates(t *testing.T) {
	u := NewUniverse(2000, 2)
	seen := map[string]bool{}
	for _, d := range u.All() {
		if seen[d.Name] {
			t.Fatalf("duplicate name %s", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestEmailProvidersPinned(t *testing.T) {
	u := NewUniverse(1000, 1)
	gmail, ok := u.Lookup("gmail.com")
	if !ok {
		t.Fatal("gmail.com not in universe")
	}
	if gmail.EmailRank != 1 || gmail.Rank != 1 {
		t.Errorf("gmail = %+v", gmail)
	}
	cat := u.EmailCategory()
	if len(cat) != len(EmailProviders) {
		t.Fatalf("email category = %d, want %d", len(cat), len(EmailProviders))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i].EmailRank <= cat[i-1].EmailRank {
			t.Fatal("email category not sorted")
		}
	}
	if _, ok := u.Lookup("definitely-not-there.example"); ok {
		t.Error("phantom lookup")
	}
}

func TestVisitorsPowerLaw(t *testing.T) {
	if Visitors(0) != 0 {
		t.Error("rank 0 should have no visitors")
	}
	v1, v10, v100 := Visitors(1), Visitors(10), Visitors(100)
	if !(v1 > v10 && v10 > v100) {
		t.Fatalf("not decreasing: %g %g %g", v1, v10, v100)
	}
	// Power law: equal ratios per decade.
	r1 := v1 / v10
	r2 := v10 / v100
	if r1/r2 < 0.99 || r1/r2 > 1.01 {
		t.Errorf("not scale free: %g vs %g", r1, r2)
	}
}

func TestTop(t *testing.T) {
	u := NewUniverse(100, 3)
	if got := len(u.Top(10)); got != 10 {
		t.Errorf("Top(10) = %d", got)
	}
	if got := len(u.Top(1000)); got != 100 {
		t.Errorf("Top(1000) = %d", got)
	}
}

func TestMistakeWeightOrdering(t *testing.T) {
	// Figure 9: deletion and transposition dominate addition and
	// substitution by roughly an order of magnitude.
	del, tr := MistakeWeight(distance.OpDeletion), MistakeWeight(distance.OpTransposition)
	add, sub := MistakeWeight(distance.OpAddition), MistakeWeight(distance.OpSubstitution)
	if !(del > sub && del > add && tr > sub && tr > add) {
		t.Fatalf("weights: del=%v tr=%v sub=%v add=%v", del, tr, sub, add)
	}
	if del/sub < 5 || tr/add < 5 {
		t.Errorf("separation less than the paper's order of magnitude: del/sub=%v tr/add=%v", del/sub, tr/add)
	}
}

func TestTypoTrafficShape(t *testing.T) {
	u := NewUniverse(100, 1)
	gmail, _ := u.Lookup("gmail.com")
	rng := rand.New(rand.NewSource(42))
	sample := func(op distance.EditOp, visual float64) float64 {
		var xs []float64
		for i := 0; i < 400; i++ {
			xs = append(xs, TypoTraffic(gmail, op, visual, rng))
		}
		return stats.Mean(xs)
	}
	delMean := sample(distance.OpDeletion, 0.3)
	subMean := sample(distance.OpSubstitution, 0.3)
	if delMean <= subMean {
		t.Errorf("deletion mean %g <= substitution mean %g", delMean, subMean)
	}
	// Visual distance suppresses traffic.
	closeMean := sample(distance.OpSubstitution, 0.05)
	farMean := sample(distance.OpSubstitution, 0.9)
	if closeMean <= farMean {
		t.Errorf("visually close %g <= far %g", closeMean, farMean)
	}
	// More popular targets leak more.
	low := u.All()[80]
	lowMean := 0.0
	for i := 0; i < 400; i++ {
		lowMean += TypoTraffic(low, distance.OpDeletion, 0.3, rng)
	}
	lowMean /= 400
	if delMean <= lowMean {
		t.Errorf("popular target %g <= unpopular %g", delMean, lowMean)
	}
}

func TestRelativePopularity(t *testing.T) {
	u := NewUniverse(10, 1)
	gmail, _ := u.Lookup("gmail.com")
	rng := rand.New(rand.NewSource(1))
	tt := TypoTraffic(gmail, distance.OpDeletion, 0, rng)
	rp := RelativePopularity(tt, gmail)
	if rp <= 0 || rp > 100 {
		t.Errorf("relative popularity = %g", rp)
	}
	if RelativePopularity(1, Domain{}) != 0 {
		t.Error("zero-traffic target should give 0")
	}
}

func TestDomainString(t *testing.T) {
	u := NewUniverse(10, 1)
	d, _ := u.Lookup("gmail.com")
	if s := d.String(); s == "" {
		t.Error("empty String()")
	}
}
