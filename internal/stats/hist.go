package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval.
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram creates a histogram with bins equal-width bins on
// [min, max). Observations below min or at/above max are tallied in
// under/overflow counters.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || !(max > min) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// String renders a compact ASCII bar chart, useful in experiment output.
func (h *Histogram) String() string {
	peak := 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/peak)
		fmt.Fprintf(&sb, "%10.3g |%-40s %d\n", h.BinCenter(i), bar, c)
	}
	return sb.String()
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs.
func NewECDF(xs []float64) *ECDF {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return &ECDF{sorted: c}
}

// At returns the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// CumulativeShares returns, for values sorted in decreasing order, the
// running fraction of the total mass contributed by the first k values.
// This is the transformation behind Figures 5 and 8 of the paper
// (cumulative sum of emails by domain; of typo domains by mail server /
// registrant).
func CumulativeShares(values []float64) []float64 {
	c := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(c)))
	var total float64
	for _, v := range c {
		total += v
	}
	out := make([]float64, len(c))
	if total == 0 {
		return out
	}
	var run float64
	for i, v := range c {
		run += v
		out[i] = run / total
	}
	return out
}

// TopShareCount returns the minimum number of the largest values whose sum
// reaches at least frac (0..1] of the total. It returns 0 for an empty or
// all-zero input.
func TopShareCount(values []float64, frac float64) int {
	shares := CumulativeShares(values)
	for i, s := range shares {
		if s >= frac {
			return i + 1
		}
	}
	return 0
}
