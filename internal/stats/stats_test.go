package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1, -3, 3}, 0},
		{"fractional", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance (n-1) of this classic example is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEq(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"repeated", []float64{5, 5, 5, 5}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			orig := append([]float64(nil), tc.in...)
			if got := Median(tc.in); got != tc.want {
				t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range orig {
				if tc.in[i] != orig[i] {
					t.Fatalf("Median mutated its input")
				}
			}
		})
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median = 2; |dev| = {1,1,0,0,2,4,7}; median of devs = 1.
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
}

func TestOutliersMAD(t *testing.T) {
	xs := []float64{10, 11, 10, 12, 11, 10, 500}
	out := OutliersMAD(xs, 3.5)
	if len(out) != 1 || out[0] != 6 {
		t.Errorf("OutliersMAD = %v, want [6]", out)
	}
	trimmed := TrimOutliersMAD(xs, 3.5)
	if len(trimmed) != 6 {
		t.Errorf("TrimOutliersMAD kept %d values, want 6", len(trimmed))
	}
	for _, v := range trimmed {
		if v == 500 {
			t.Errorf("outlier 500 survived trimming")
		}
	}
}

func TestOutliersMADZeroMAD(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 7}
	out := OutliersMAD(xs, 3.5)
	if len(out) != 1 || out[0] != 4 {
		t.Errorf("OutliersMAD with zero MAD = %v, want [4]", out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {105, 50},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestMeanCI(t *testing.T) {
	if _, err := MeanCI(nil, 0.95); err != ErrEmpty {
		t.Fatalf("MeanCI(nil) error = %v, want ErrEmpty", err)
	}
	iv, err := MeanCI([]float64{7}, 0.95)
	if err != nil || iv.Low != 7 || iv.High != 7 {
		t.Fatalf("MeanCI singleton = %v, %v", iv, err)
	}
	// For df=9 and 95%: t = 2.262. Sample with mean 10, sd 2, n 10.
	xs := []float64{8, 9, 9, 10, 10, 10, 10, 11, 11, 12}
	iv, err = MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(Mean(xs)) {
		t.Errorf("CI %v does not contain its own mean", iv)
	}
	if iv.Low >= iv.High {
		t.Errorf("degenerate CI %v", iv)
	}
	want := 2.262 * StdErr(xs)
	if got := (iv.High - iv.Low) / 2; !almostEq(got, want, 1e-2) {
		t.Errorf("CI half-width = %v, want ~%v", got, want)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 10, 2.228, 2e-3},
		{0.975, 1, 12.706, 2e-2},
		{0.95, 5, 2.015, 2e-3},
		{0.975, 100, 1.984, 2e-3},
		{0.5, 7, 0, 1e-9},
	}
	for _, tc := range tests {
		if got := TQuantile(tc.p, tc.df); !almostEq(got, tc.want, tc.tol) {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", tc.p, tc.df, got, tc.want)
		}
	}
	if got := TQuantile(0.025, 10); !almostEq(got, -2.228, 2e-3) {
		t.Errorf("lower tail TQuantile = %v, want -2.228", got)
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, df := range []int{1, 3, 10, 50} {
		for _, x := range []float64{0.1, 0.7, 1.5, 3} {
			l, r := TCDF(-x, df), TCDF(x, df)
			if !almostEq(l+r, 1, 1e-9) {
				t.Errorf("TCDF asymmetry at x=%v df=%d: %v + %v != 1", x, df, l, r)
			}
		}
		if got := TCDF(0, df); !almostEq(got, 0.5, 1e-9) {
			t.Errorf("TCDF(0, %d) = %v, want 0.5", df, got)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want, tol float64
	}{
		{0.5, 0, 1e-8},
		{0.975, 1.959964, 1e-4},
		{0.025, -1.959964, 1e-4},
		{0.84134, 1.0, 2e-3},
		{0.999, 3.0902, 1e-3},
	}
	for _, tc := range tests {
		if got := NormalQuantile(tc.p); !almostEq(got, tc.want, tc.tol) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Errorf("NormalQuantile boundary behaviour wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Observe(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.under, h.over)
	}
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if h.String() == "" {
		t.Error("String() empty")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1,0,3) did not panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("ECDF.At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	empty := NewECDF(nil)
	if empty.At(1) != 0 {
		t.Error("empty ECDF should return 0")
	}
}

func TestCumulativeShares(t *testing.T) {
	got := CumulativeShares([]float64{1, 3, 4, 2})
	want := []float64{0.4, 0.7, 0.9, 1.0}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("CumulativeShares[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := CumulativeShares([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("all-zero input should yield zero shares, got %v", zero)
	}
}

func TestTopShareCount(t *testing.T) {
	vals := []float64{50, 30, 10, 5, 5}
	tests := []struct {
		frac float64
		want int
	}{
		{0.5, 1}, {0.79, 2}, {0.8, 2}, {0.9, 3}, {1.0, 5},
	}
	for _, tc := range tests {
		if got := TopShareCount(vals, tc.frac); got != tc.want {
			t.Errorf("TopShareCount(%v) = %d, want %d", tc.frac, got, tc.want)
		}
	}
	if got := TopShareCount(nil, 0.5); got != 0 {
		t.Errorf("TopShareCount(nil) = %d, want 0", got)
	}
}

// Property: the mean always lies within [min, max] of the sample and the
// MeanCI always contains the sample mean.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if m < lo-1e-6 || m > hi+1e-6 {
			return false
		}
		iv, err := MeanCI(xs, 0.95)
		return err == nil && iv.Contains(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CumulativeShares is nondecreasing and ends at 1 for positive
// inputs.
func TestCumulativeSharesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		shares := CumulativeShares(xs)
		prev := 0.0
		for i, s := range shares {
			if s < prev-1e-12 {
				t.Fatalf("shares decreased at %d: %v", i, shares)
			}
			prev = s
		}
		if !almostEq(shares[n-1], 1, 1e-9) {
			t.Fatalf("final share %v != 1", shares[n-1])
		}
	}
}

// Property: MAD is translation invariant and scales with |a|.
func TestMADInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		shift := rng.Float64()*20 - 10
		scale := rng.Float64()*4 + 0.1
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = x * scale
		}
		if !almostEq(MAD(shifted), MAD(xs), 1e-9) {
			t.Fatalf("MAD not translation invariant")
		}
		if !almostEq(MAD(scaled), scale*MAD(xs), 1e-9) {
			t.Fatalf("MAD not scale equivariant")
		}
	}
}
