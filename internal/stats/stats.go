// Package stats provides the small statistical toolkit the study relies
// on: summary statistics, Student-t confidence intervals, median-absolute-
// deviation (MAD) outlier detection, percentiles, histograms and empirical
// CDFs.
//
// The paper uses these in three places: the 95% confidence intervals around
// per-mistake-type typo-domain popularity (Figure 9), MAD-based outlier
// removal of accidentally-popular typo domains (Section 6.1), and the
// prediction intervals of the regression projection (Section 6.2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two observations are available.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MAD returns the median of all absolute deviations from the median,
// the robust scale estimator of Rousseeuw and Hubert used by the paper to
// discard typo domains with outlying traffic.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// madConsistency rescales the MAD to be a consistent estimator of the
// standard deviation under normality (1 / Phi^-1(3/4)).
const madConsistency = 1.4826

// OutliersMAD reports the indices of observations whose robust z-score
// |x - median| / (1.4826 * MAD) exceeds k. When the MAD is zero (at least
// half the observations identical) any differing observation is an outlier.
func OutliersMAD(xs []float64, k float64) []int {
	if len(xs) == 0 {
		return nil
	}
	m := Median(xs)
	mad := MAD(xs)
	var out []int
	for i, x := range xs {
		d := math.Abs(x - m)
		if mad == 0 {
			if d > 0 {
				out = append(out, i)
			}
			continue
		}
		if d/(madConsistency*mad) > k {
			out = append(out, i)
		}
	}
	return out
}

// TrimOutliersMAD returns a copy of xs with MAD outliers (threshold k)
// removed.
func TrimOutliersMAD(xs []float64, k float64) []float64 {
	drop := OutliersMAD(xs, k)
	if len(drop) == 0 {
		return append([]float64(nil), xs...)
	}
	isDrop := make(map[int]bool, len(drop))
	for _, i := range drop {
		isDrop[i] = true
	}
	kept := make([]float64, 0, len(xs)-len(drop))
	for i, x := range xs {
		if !isDrop[i] {
			kept = append(kept, x)
		}
	}
	return kept
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean  float64
	Low   float64
	High  float64
	Level float64 // confidence level, e.g. 0.95
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", iv.Mean, iv.Low, iv.High, iv.Level*100)
}

// Contains reports whether x falls inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Low && x <= iv.High }

// MeanCI returns the Student-t confidence interval for the mean of xs at
// the given confidence level (e.g. 0.95).
func MeanCI(xs []float64, level float64) (Interval, error) {
	n := len(xs)
	if n == 0 {
		return Interval{}, ErrEmpty
	}
	m := Mean(xs)
	if n == 1 {
		return Interval{Mean: m, Low: m, High: m, Level: level}, nil
	}
	t := TQuantile(1-(1-level)/2, n-1)
	half := t * StdErr(xs)
	return Interval{Mean: m, Low: m - half, High: m + half, Level: level}, nil
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, computed by inverting the regularized incomplete
// beta function with bisection. Accuracy is ample for interval estimation.
func TQuantile(p float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	// t CDF is monotone; bisect on [0, hi].
	hi := 1.0
	for TCDF(hi, df) < p && hi < 1e6 {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T <= t) for Student's t distribution with df degrees of
// freedom.
func TCDF(t float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := float64(df) / (float64(df) + t*t)
	ib := regIncBeta(float64(df)/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Beasley-Springer-Moro rational approximation.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's approximation.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via its continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	const eps = 1e-14
	const tiny = 1e-300
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -((a + float64(m)) * (a + b + float64(m)) * x) / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
