// Package smtpd implements the RFC 5321 server side of the study's
// collection infrastructure: a catch-all SMTP server that — like the
// Postfix configuration of Section 4.2.2 — "accepts any email sent to any
// email address. The username and the domain name can thus both be random
// strings." It never relays.
//
// The same server type also plays the typosquatters' mail exchangers in
// the honey-email experiment (Section 7), where per-connection behaviors
// (bounce, stall, drop) reproduce the error taxonomy of Table 5.
package smtpd

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Limits mirroring common Postfix defaults.
const (
	DefaultMaxSize    = 10 << 20 // message size limit advertised via SIZE
	DefaultMaxRcpts   = 100
	DefaultMaxConns   = 512 // concurrent sessions (Postfix default_process_limit ballpark)
	DefaultTimeout    = 30 * time.Second
	maxLineLen        = 2048
	maxCommandsPerSes = 1000
)

// Envelope is one received message with its transaction metadata. The
// collection pipeline keys several analyses off these fields: LocalAddr
// implements the paper's one-to-one IP-to-domain mapping used to classify
// SMTP typos ("we have to differentiate domains by IP addresses"), and
// HelloName feeds Layer 1's relay check.
type Envelope struct {
	RemoteAddr string
	LocalAddr  string
	HelloName  string
	MailFrom   string
	Rcpts      []string
	Data       []byte
	TLS        bool
	Received   time.Time
}

// ConnAction is what a Behavior tells the server to do with a connection.
type ConnAction int

// Connection-level behaviors for the honey-probe error taxonomy.
const (
	ActProceed   ConnAction = iota // normal service
	ActDrop                        // close immediately: "network error"
	ActStall                       // accept then never respond: "timeout"
	ActRejectAll                   // respond 550 to every RCPT: "bounce"
	ActTempFail                    // respond 421 and close: "other error"
)

// Config parameterizes a Server.
type Config struct {
	// Hostname is announced in the greeting and EHLO response.
	Hostname string
	// MaxSize bounds DATA payloads; 0 means DefaultMaxSize.
	MaxSize int
	// MaxRcpts bounds recipients per transaction; 0 means DefaultMaxRcpts.
	MaxRcpts int
	// MaxConns bounds concurrent sessions; when all slots are busy the
	// accept loop blocks, letting the kernel backlog absorb the burst
	// instead of spawning a goroutine per hostile connection. 0 means
	// DefaultMaxConns.
	MaxConns int
	// Timeout bounds each read/write; 0 means DefaultTimeout.
	Timeout time.Duration
	// BannerTimeout bounds the pre-banner phase — the implicit-TLS
	// handshake and greeting write; 0 means Timeout.
	BannerTimeout time.Duration
	// CmdTimeout bounds each command-line read; 0 means Timeout.
	CmdTimeout time.Duration
	// DataTimeout is one budget for the entire DATA payload. Per-line
	// deadlines are clipped to it, so a sender dribbling body lines just
	// inside Timeout cannot hold the session open indefinitely; 0 means
	// 4×Timeout.
	DataTimeout time.Duration
	// Listen binds the ListenAndServe socket — the fault-injection seam.
	// nil uses net.Listen.
	Listen func(network, addr string) (net.Listener, error)
	// TLS enables STARTTLS when non-nil.
	TLS *tls.Config
	// ImplicitTLS wraps every accepted connection in TLS immediately —
	// the SMTPS (port 465) service of the honey probe's port matrix.
	// Requires TLS to be set.
	ImplicitTLS bool
	// Deliver receives each completed envelope. Required.
	Deliver func(*Envelope) error
	// RcptPolicy may reject individual recipients. nil accepts all
	// (catch-all). Return an SMTPError to pick status code and text.
	RcptPolicy func(rcpt string) error
	// Behavior decides per-connection handling; nil means ActProceed.
	Behavior func(remoteAddr string) ConnAction
	// Clock supplies envelope timestamps; nil means time.Now.
	Clock func() time.Time
}

// SMTPError carries a protocol status code and message.
type SMTPError struct {
	Code int
	Msg  string
}

func (e *SMTPError) Error() string { return fmt.Sprintf("%d %s", e.Code, e.Msg) }

// Server is a catch-all SMTP server.
type Server struct {
	cfg Config
	sem chan struct{} // session slots; acquired in Serve, released by the session goroutine

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	nAccepted int64 // envelopes delivered
	nSessions int64
	nQuits    int64 // sessions ended on the server's terms (QUIT, final 421)
	nAborts   int64 // sessions cut short: I/O error, timeout, drop, TLS failure
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("smtpd: server closed")

// NewServer validates cfg and creates a Server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Deliver == nil {
		return nil, errors.New("smtpd: Config.Deliver is required")
	}
	if cfg.ImplicitTLS && cfg.TLS == nil {
		return nil, errors.New("smtpd: ImplicitTLS requires Config.TLS")
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.invalid"
	}
	if cfg.MaxSize == 0 {
		cfg.MaxSize = DefaultMaxSize
	}
	if cfg.MaxRcpts == 0 {
		cfg.MaxRcpts = DefaultMaxRcpts
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.BannerTimeout == 0 {
		cfg.BannerTimeout = cfg.Timeout
	}
	if cfg.CmdTimeout == 0 {
		cfg.CmdTimeout = cfg.Timeout
	}
	if cfg.DataTimeout == 0 {
		cfg.DataTimeout = 4 * cfg.Timeout
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxConns < 0 {
		return nil, errors.New("smtpd: Config.MaxConns must be positive")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// ListenAndServe binds addr ("127.0.0.1:0") and serves until ctx ends.
// The bound address is reported on bound before the accept loop starts.
func (s *Server) ListenAndServe(ctx context.Context, addr string, bound chan<- net.Addr) error {
	listen := s.cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("smtpd: listen %s: %w", addr, err)
	}
	if bound != nil {
		bound <- ln.Addr()
	}
	return s.Serve(ctx, ln)
}

// Serve accepts connections on ln until ctx is canceled or Close is
// called.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				s.wg.Wait()
				return ctx.Err()
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return ErrServerClosed
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			s.wg.Wait()
			return fmt.Errorf("smtpd: accept: %w", err)
		}
		// Admission control: take a session slot before spawning, so a
		// connection flood stalls here rather than growing a goroutine
		// per peer for the lifetime of a seven-month run.
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			conn.Close()
			s.wg.Wait()
			return ctx.Err()
		}
		s.mu.Lock()
		if s.closed {
			// Accept can race with Close: the listener may hand us one
			// last connection after Close snapshotted s.conns. Registering
			// it here would wg.Add concurrently with Close's wg.Wait and
			// leak a session Close never sees; drop it instead.
			s.mu.Unlock()
			conn.Close()
			<-s.sem
			continue
		}
		s.conns[conn] = struct{}{}
		s.nSessions++
		// Add under the same critical section that checks s.closed, so
		// Close (which sets closed under mu before calling wg.Wait)
		// either sees this session registered or we see closed above.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				<-s.sem
			}()
			graceful := s.session(conn)
			s.mu.Lock()
			if graceful {
				s.nQuits++
			} else {
				s.nAborts++
			}
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and closes active sessions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats reports sessions seen and envelopes delivered.
func (s *Server) Stats() (sessions, delivered int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nSessions, s.nAccepted
}

// SessionStats splits finished sessions into graceful endings (QUIT, a
// final 421 the server chose to send) and aborts (I/O errors, timeouts,
// dropped or stalled-out peers). quits+aborts equals sessions once all
// session goroutines have exited — the chaos soak's reconciliation hook.
func (s *Server) SessionStats() (quits, aborts int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nQuits, s.nAborts
}

// session drives one SMTP conversation. The return reports whether the
// session ended on the server's terms (QUIT, a deliberate final 421) or
// was aborted by an I/O failure, timeout, or behavior-driven drop.
func (s *Server) session(conn net.Conn) (graceful bool) {
	action := ActProceed
	if s.cfg.Behavior != nil {
		action = s.cfg.Behavior(conn.RemoteAddr().String())
	}
	switch action {
	case ActDrop:
		return false // close without a byte: connection reset from client's view
	case ActStall:
		// Hold the connection silently until the peer gives up.
		//repolint:allow errdrop the stall behavior ends when the peer disconnects; its read error is the signal, not a failure
		io.Copy(io.Discard, conn) //repolint:allow deadlineflow a stall is deliberately unbounded: the tarpit holds the spammer until the peer itself disconnects
		return false
	}

	inTLS := false
	if s.cfg.ImplicitTLS {
		// SMTPS: the handshake happens before the first protocol byte,
		// inside the banner phase's budget.
		tlsConn := tls.Server(conn, s.cfg.TLS)
		conn.SetDeadline(time.Now().Add(s.cfg.BannerTimeout))
		if err := tlsConn.HandshakeContext(context.Background()); err != nil {
			return false
		}
		conn.SetDeadline(time.Time{})
		conn = tlsConn
		inTLS = true
	}

	c := &sessionConn{
		conn:        conn,
		r:           bufio.NewReaderSize(conn, 4096),
		w:           bufio.NewWriter(conn),
		timeout:     s.cfg.Timeout,
		cmdTimeout:  s.cfg.CmdTimeout,
		dataTimeout: s.cfg.DataTimeout,
	}

	if action == ActTempFail {
		c.reply(421, s.cfg.Hostname+" service not available")
		return c.err == nil
	}

	c.reply(220, s.cfg.Hostname+" ESMTP service ready")

	var (
		helloName string
		env       *Envelope
	)
	resetTxn := func() { env = nil }
	quitReply := s.cfg.Hostname + " closing connection"

	for cmds := 0; cmds < maxCommandsPerSes; cmds++ {
		line, err := c.readLine()
		if err != nil {
			return false
		}
		verb, arg := splitCommand(line)
		switch verb {
		case "HELO":
			if arg == "" {
				c.reply(501, "syntax: HELO hostname")
				continue
			}
			helloName = arg
			resetTxn()
			c.reply(250, s.cfg.Hostname)
		case "EHLO":
			if arg == "" {
				c.reply(501, "syntax: EHLO hostname")
				continue
			}
			helloName = arg
			resetTxn()
			exts := []string{s.cfg.Hostname, fmt.Sprintf("SIZE %d", s.cfg.MaxSize), "8BITMIME", "PIPELINING"}
			if s.cfg.TLS != nil && !inTLS {
				exts = append(exts, "STARTTLS")
			}
			c.replyMulti(250, exts)
		case "STARTTLS":
			if s.cfg.TLS == nil {
				c.reply(502, "command not implemented")
				continue
			}
			if inTLS {
				c.reply(503, "already in TLS")
				continue
			}
			c.reply(220, "ready to start TLS")
			if c.err != nil {
				return false
			}
			tlsConn := tls.Server(conn, s.cfg.TLS)
			// The upgrade handshake is a fresh banner phase.
			conn.SetDeadline(time.Now().Add(s.cfg.BannerTimeout))
			if err := tlsConn.HandshakeContext(context.Background()); err != nil {
				return false
			}
			conn.SetDeadline(time.Time{})
			conn = tlsConn
			c.conn = tlsConn
			c.r = bufio.NewReaderSize(tlsConn, 4096)
			c.w = bufio.NewWriter(tlsConn)
			inTLS = true
			helloName = ""
			resetTxn()
		case "MAIL":
			if helloName == "" {
				c.reply(503, "send HELO/EHLO first")
				continue
			}
			from, perr := parsePath(arg, "FROM")
			if perr != nil {
				c.reply(501, perr.Error())
				continue
			}
			env = &Envelope{
				RemoteAddr: conn.RemoteAddr().String(),
				LocalAddr:  conn.LocalAddr().String(),
				HelloName:  helloName,
				MailFrom:   from,
				TLS:        inTLS,
			}
			c.reply(250, "ok")
		case "RCPT":
			if env == nil {
				c.reply(503, "need MAIL first")
				continue
			}
			rcpt, perr := parsePath(arg, "TO")
			if perr != nil {
				c.reply(501, perr.Error())
				continue
			}
			if action == ActRejectAll {
				c.reply(550, "mailbox unavailable")
				continue
			}
			if len(env.Rcpts) >= s.cfg.MaxRcpts {
				c.reply(452, "too many recipients")
				continue
			}
			if s.cfg.RcptPolicy != nil {
				if rerr := s.cfg.RcptPolicy(rcpt); rerr != nil {
					var serr *SMTPError
					if errors.As(rerr, &serr) {
						c.reply(serr.Code, serr.Msg)
					} else {
						c.reply(550, "mailbox unavailable")
					}
					continue
				}
			}
			env.Rcpts = append(env.Rcpts, rcpt)
			c.reply(250, "ok")
		case "DATA":
			if env == nil || len(env.Rcpts) == 0 {
				c.reply(503, "need RCPT first")
				continue
			}
			c.reply(354, "end data with <CRLF>.<CRLF>")
			data, derr := c.readData(s.cfg.MaxSize)
			if derr != nil {
				if errors.Is(derr, errTooLarge) {
					c.reply(552, "message exceeds size limit")
					resetTxn()
					continue
				}
				return false
			}
			env.Data = data
			env.Received = s.cfg.Clock()
			if err := s.cfg.Deliver(env); err != nil {
				c.reply(451, "local error in processing")
			} else {
				s.mu.Lock()
				s.nAccepted++
				s.mu.Unlock()
				c.reply(250, "ok: queued")
			}
			resetTxn()
		case "RSET":
			resetTxn()
			c.reply(250, "ok")
		case "NOOP":
			c.reply(250, "ok")
		case "VRFY":
			// Catch-all server: everything "exists", but RFC 5321 suggests
			// the noncommittal 252.
			c.reply(252, "cannot VRFY user, but will accept message")
		case "QUIT":
			c.reply(221, quitReply)
			return c.err == nil
		default:
			c.reply(500, "command not recognized")
		}
	}
	c.reply(421, "too many commands")
	return c.err == nil
}

var errTooLarge = errors.New("smtpd: message too large")

// sessionConn is the server half's line discipline. It follows the
// smtp-server typestate protocol — the 220/421 banner reply precedes
// the first client read — and every method sets a phase deadline;
// repolint's sessionproto analyzer checks both (the tarpit path never
// constructs one, so it is naturally out of protocol scope).
type sessionConn struct {
	conn        net.Conn
	r           *bufio.Reader
	w           *bufio.Writer
	timeout     time.Duration // reply writes
	cmdTimeout  time.Duration // each command-line read
	dataTimeout time.Duration // the whole DATA payload
	// err is the first reply-write failure; it poisons the session so
	// the command loop stops instead of processing commands the peer
	// can no longer see answers to.
	err error
}

func (c *sessionConn) readLine() (string, error) {
	if c.err != nil {
		return "", c.err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.cmdTimeout))
	var sb strings.Builder
	for {
		frag, isPrefix, err := c.r.ReadLine()
		if err != nil {
			return "", err
		}
		sb.Write(frag)
		if sb.Len() > maxLineLen {
			return "", errors.New("smtpd: line too long")
		}
		if !isPrefix {
			return sb.String(), nil
		}
	}
}

// readData consumes a DATA payload with dot-stuffing until the
// terminating "." line.
func (c *sessionConn) readData(maxSize int) ([]byte, error) {
	var buf []byte
	tooLarge := false
	// One budget for the whole payload: per-line deadlines renew but are
	// clipped to it, so dribbling one byte per Timeout gets cut off here.
	dataDeadline := time.Now().Add(c.dataTimeout)
	for {
		lineDeadline := time.Now().Add(c.timeout)
		if dataDeadline.Before(lineDeadline) {
			lineDeadline = dataDeadline
		}
		c.conn.SetReadDeadline(lineDeadline)
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "." {
			if tooLarge {
				return nil, errTooLarge
			}
			return buf, nil
		}
		if strings.HasPrefix(trimmed, ".") {
			trimmed = trimmed[1:] // un-stuff
		}
		if len(buf)+len(trimmed)+2 > maxSize {
			tooLarge = true // keep consuming to the terminator
			continue
		}
		buf = append(buf, trimmed...)
		buf = append(buf, '\r', '\n')
	}
}

func (c *sessionConn) reply(code int, msg string) {
	if c.err != nil {
		return
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if _, err := fmt.Fprintf(c.w, "%d %s\r\n", code, msg); err != nil {
		c.err = err
		return
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
	}
}

func (c *sessionConn) replyMulti(code int, lines []string) {
	if c.err != nil {
		return
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	for i, l := range lines {
		sep := "-"
		if i == len(lines)-1 {
			sep = " "
		}
		if _, err := fmt.Fprintf(c.w, "%d%s%s\r\n", code, sep, l); err != nil {
			c.err = err
			return
		}
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
	}
}

func splitCommand(line string) (verb, arg string) {
	line = strings.TrimSpace(line)
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return strings.ToUpper(line), ""
	}
	return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
}

// parsePath extracts the address from "FROM:<a@b>" / "TO:<a@b>" syntax.
// The null reverse-path "<>" (bounces) is legal for FROM.
func parsePath(arg, keyword string) (string, error) {
	upper := strings.ToUpper(arg)
	prefix := keyword + ":"
	if !strings.HasPrefix(upper, prefix) {
		return "", fmt.Errorf("syntax: %s:<address>", keyword)
	}
	rest := strings.TrimSpace(arg[len(prefix):])
	// Strip ESMTP parameters (SIZE=..., BODY=8BITMIME).
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	if !strings.HasPrefix(rest, "<") || !strings.HasSuffix(rest, ">") {
		return "", fmt.Errorf("syntax: %s:<address>", keyword)
	}
	addr := rest[1 : len(rest)-1]
	if addr == "" && keyword == "FROM" {
		return "", nil // null reverse-path
	}
	if !strings.Contains(addr, "@") {
		return "", fmt.Errorf("invalid address %q", addr)
	}
	return strings.ToLower(addr), nil
}
