package smtpd

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"
)

// SelfSignedTLS generates an in-memory self-signed certificate for the
// given host names, suitable for the STARTTLS support matrix of Table 4.
// Typosquatting mail servers overwhelmingly present exactly this kind of
// certificate — valid TLS, worthless identity — which is why the probe
// (internal/probe) records "STARTTLS with errors" for them.
func SelfSignedTLS(hosts ...string) (*tls.Config, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("smtpd: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("smtpd: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: firstOr(hosts, "mail.invalid")},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     hosts,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("smtpd: creating certificate: %w", err)
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	return &tls.Config{Certificates: []tls.Certificate{cert}}, nil
}

func firstOr(xs []string, def string) string {
	if len(xs) > 0 {
		return xs[0]
	}
	return def
}
