package smtpd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer launches a server and returns its address, the delivered
// envelopes (behind mu), and a stop function.
func startServer(t *testing.T, cfg Config) (string, func() []*Envelope, func()) {
	t.Helper()
	var mu sync.Mutex
	var got []*Envelope
	if cfg.Deliver == nil {
		cfg.Deliver = func(e *Envelope) error {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, e)
			return nil
		}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan net.Addr, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ListenAndServe(ctx, "127.0.0.1:0", bound)
	}()
	addr := (<-bound).String()
	stop := func() {
		cancel()
		srv.Close()
		<-done
	}
	envs := func() []*Envelope {
		mu.Lock()
		defer mu.Unlock()
		return append([]*Envelope(nil), got...)
	}
	return addr, envs, stop
}

// script runs a scripted SMTP dialogue and returns every reply line.
func script(t *testing.T, addr string, cmds []string) []string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	var replies []string
	readReply := func() string {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("read: %v (so far %v)", err, replies)
			}
			line = strings.TrimRight(line, "\r\n")
			replies = append(replies, line)
			if len(line) >= 4 && line[3] == ' ' {
				return line
			}
		}
	}
	readReply() // greeting
	for _, c := range cmds {
		fmt.Fprintf(conn, "%s\r\n", c)
		if c == "QUIT" {
			readReply()
			break
		}
		readReply()
	}
	return replies
}

func TestCatchAllDelivery(t *testing.T) {
	addr, envs, stop := startServer(t, Config{Hostname: "gmial.com"})
	defer stop()

	// Random username at random subdomain must be accepted (Section 4.2.2).
	replies := script(t, addr, []string{
		"EHLO sender.example.com",
		"MAIL FROM:<alice@gmail.com>",
		"RCPT TO:<xyzzy-random@deep.sub.gmial.com>",
		"DATA",
		"Subject: hi\r\n\r\nbody line\r\n.",
		"QUIT",
	})
	joined := strings.Join(replies, "\n")
	if !strings.Contains(joined, "250 ok: queued") {
		t.Fatalf("delivery not acknowledged:\n%s", joined)
	}
	got := envs()
	if len(got) != 1 {
		t.Fatalf("delivered = %d", len(got))
	}
	e := got[0]
	if e.MailFrom != "alice@gmail.com" || len(e.Rcpts) != 1 || e.Rcpts[0] != "xyzzy-random@deep.sub.gmial.com" {
		t.Errorf("envelope = %+v", e)
	}
	if e.HelloName != "sender.example.com" {
		t.Errorf("HelloName = %q", e.HelloName)
	}
	if !strings.Contains(string(e.Data), "body line") {
		t.Errorf("data = %q", e.Data)
	}
	if e.LocalAddr == "" || e.RemoteAddr == "" {
		t.Error("addresses not recorded")
	}
	if e.Received.IsZero() {
		t.Error("timestamp not recorded")
	}
}

func TestCommandSequencing(t *testing.T) {
	addr, _, stop := startServer(t, Config{})
	defer stop()
	replies := script(t, addr, []string{
		"MAIL FROM:<a@b.com>", // before HELO
		"EHLO x",
		"RCPT TO:<c@d.com>", // before MAIL
		"DATA",              // before RCPT
		"MAIL FROM:<a@b.com>",
		"DATA", // RCPT missing
		"NOOP",
		"RSET",
		"VRFY someone",
		"BOGUS",
		"QUIT",
	})
	wantPrefixes := map[string]string{
		"MAIL before HELO": "503",
		"RCPT before MAIL": "503",
	}
	_ = wantPrefixes
	joined := strings.Join(replies, "\n")
	for _, want := range []string{"503 send HELO/EHLO first", "503 need MAIL first", "503 need RCPT first", "252 ", "500 command not recognized", "221 "} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing reply %q in:\n%s", want, joined)
		}
	}
}

func TestEHLOExtensions(t *testing.T) {
	tlsCfg, err := SelfSignedTLS("gmial.com")
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startServer(t, Config{Hostname: "gmial.com", TLS: tlsCfg})
	defer stop()
	replies := script(t, addr, []string{"EHLO probe", "QUIT"})
	joined := strings.Join(replies, "\n")
	for _, ext := range []string{"SIZE", "8BITMIME", "PIPELINING", "STARTTLS"} {
		if !strings.Contains(joined, ext) {
			t.Errorf("EHLO missing %s:\n%s", ext, joined)
		}
	}
}

func TestNoSTARTTLSWithoutConfig(t *testing.T) {
	addr, _, stop := startServer(t, Config{})
	defer stop()
	replies := script(t, addr, []string{"EHLO probe", "STARTTLS", "QUIT"})
	joined := strings.Join(replies, "\n")
	if strings.Contains(joined, "250-STARTTLS") || strings.Contains(joined, "250 STARTTLS") {
		t.Error("STARTTLS advertised without TLS config")
	}
	if !strings.Contains(joined, "502") {
		t.Errorf("STARTTLS should draw 502:\n%s", joined)
	}
}

func TestSizeLimit(t *testing.T) {
	addr, envs, stop := startServer(t, Config{MaxSize: 100})
	defer stop()
	big := strings.Repeat("x", 300)
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<c@d.com>",
		"DATA",
		big + "\r\n.",
		"QUIT",
	})
	joined := strings.Join(replies, "\n")
	if !strings.Contains(joined, "552") {
		t.Errorf("oversized message not rejected:\n%s", joined)
	}
	if len(envs()) != 0 {
		t.Error("oversized message delivered")
	}
}

func TestDotStuffing(t *testing.T) {
	addr, envs, stop := startServer(t, Config{})
	defer stop()
	script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<c@d.com>",
		"DATA",
		"line one\r\n..dotted line\r\n.",
		"QUIT",
	})
	got := envs()
	if len(got) != 1 {
		t.Fatalf("delivered = %d", len(got))
	}
	if !strings.Contains(string(got[0].Data), "\r\n.dotted line") {
		t.Errorf("dot-stuffing not undone: %q", got[0].Data)
	}
}

func TestNullReversePathAccepted(t *testing.T) {
	addr, envs, stop := startServer(t, Config{})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<>",
		"RCPT TO:<c@d.com>",
		"DATA",
		"bounce body\r\n.",
		"QUIT",
	})
	if !strings.Contains(strings.Join(replies, "\n"), "250 ok: queued") {
		t.Fatalf("bounce message rejected:\n%s", strings.Join(replies, "\n"))
	}
	if got := envs(); len(got) != 1 || got[0].MailFrom != "" {
		t.Errorf("envelope = %+v", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	addr, _, stop := startServer(t, Config{})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO", // missing arg
		"HELO", // missing arg
		"EHLO x",
		"MAIL FROM:noangle", // missing <>
		"MAIL FROM:<noat>",  // no @
		"QUIT",
	})
	joined := strings.Join(replies, "\n")
	if got := strings.Count(joined, "501"); got != 4 {
		t.Errorf("expected 4 x 501 replies, got %d:\n%s", got, joined)
	}
}

func TestRcptPolicy(t *testing.T) {
	addr, envs, stop := startServer(t, Config{
		RcptPolicy: func(rcpt string) error {
			if strings.HasSuffix(rcpt, "@closed.com") {
				return &SMTPError{Code: 550, Msg: "no such user"}
			}
			return nil
		},
	})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<u@closed.com>",
		"RCPT TO:<u@open.com>",
		"DATA",
		"hi\r\n.",
		"QUIT",
	})
	joined := strings.Join(replies, "\n")
	if !strings.Contains(joined, "550 no such user") {
		t.Errorf("policy rejection missing:\n%s", joined)
	}
	got := envs()
	if len(got) != 1 || len(got[0].Rcpts) != 1 || got[0].Rcpts[0] != "u@open.com" {
		t.Errorf("envelope = %+v", got)
	}
}

func TestBehaviorRejectAll(t *testing.T) {
	addr, _, stop := startServer(t, Config{
		Behavior: func(string) ConnAction { return ActRejectAll },
	})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<u@any.com>",
		"QUIT",
	})
	if !strings.Contains(strings.Join(replies, "\n"), "550") {
		t.Errorf("RejectAll did not bounce:\n%s", strings.Join(replies, "\n"))
	}
}

func TestBehaviorTempFail(t *testing.T) {
	addr, _, stop := startServer(t, Config{
		Behavior: func(string) ConnAction { return ActTempFail },
	})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "421") {
		t.Errorf("greeting = %q, want 421", line)
	}
}

func TestBehaviorDrop(t *testing.T) {
	addr, _, stop := startServer(t, Config{
		Behavior: func(string) ConnAction { return ActDrop },
	})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("expected closed connection, read %q", buf[:n])
	}
}

func TestDeliverFailure(t *testing.T) {
	addr, _, stop := startServer(t, Config{
		Deliver: func(*Envelope) error { return fmt.Errorf("disk full") },
	})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<c@d.com>",
		"DATA",
		"hi\r\n.",
		"QUIT",
	})
	if !strings.Contains(strings.Join(replies, "\n"), "451") {
		t.Errorf("Deliver failure should 451:\n%s", strings.Join(replies, "\n"))
	}
}

func TestStats(t *testing.T) {
	srv, err := NewServer(Config{Deliver: func(*Envelope) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := make(chan net.Addr, 1)
	done := make(chan struct{})
	go func() { defer close(done); srv.ListenAndServe(ctx, "127.0.0.1:0", bound) }()
	addr := (<-bound).String()
	script(t, addr, []string{"EHLO x", "MAIL FROM:<a@b.com>", "RCPT TO:<c@d.com>", "DATA", "x\r\n.", "QUIT"})
	script(t, addr, []string{"EHLO x", "QUIT"})
	srv.Close()
	<-done
	sessions, delivered := srv.Stats()
	if sessions != 2 || delivered != 1 {
		t.Errorf("Stats = %d sessions, %d delivered; want 2, 1", sessions, delivered)
	}
}

func TestNewServerRequiresDeliver(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("NewServer without Deliver should fail")
	}
}

func TestMaxRcpts(t *testing.T) {
	addr, _, stop := startServer(t, Config{MaxRcpts: 2})
	defer stop()
	replies := script(t, addr, []string{
		"EHLO x",
		"MAIL FROM:<a@b.com>",
		"RCPT TO:<r1@d.com>",
		"RCPT TO:<r2@d.com>",
		"RCPT TO:<r3@d.com>",
		"QUIT",
	})
	if !strings.Contains(strings.Join(replies, "\n"), "452") {
		t.Errorf("recipient limit not enforced:\n%s", strings.Join(replies, "\n"))
	}
}

func TestSelfSignedTLS(t *testing.T) {
	cfg, err := SelfSignedTLS("gmial.com", "smtp.gmial.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Certificates) != 1 {
		t.Fatalf("certificates = %d", len(cfg.Certificates))
	}
	if _, err := SelfSignedTLS(); err != nil {
		t.Errorf("no-host cert: %v", err)
	}
}

func TestPipelinedCommands(t *testing.T) {
	// PIPELINING is advertised: a client may batch commands in one write.
	addr, envs, stop := startServer(t, Config{})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	readLine := func() string {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return line
	}
	readLine() // greeting
	// Entire transaction in a single write.
	fmt.Fprintf(conn, "EHLO burst\r\nMAIL FROM:<a@b.com>\r\nRCPT TO:<c@d.com>\r\nDATA\r\n")
	// EHLO is multiline; drain until the final "250 " line.
	for {
		l := readLine()
		if strings.HasPrefix(l, "250 ") {
			break
		}
	}
	for _, want := range []string{"250", "250", "354"} {
		if l := readLine(); !strings.HasPrefix(l, want) {
			t.Fatalf("pipelined reply = %q, want prefix %q", l, want)
		}
	}
	fmt.Fprintf(conn, "pipelined body\r\n.\r\nQUIT\r\n")
	if l := readLine(); !strings.HasPrefix(l, "250") {
		t.Fatalf("DATA ack = %q", l)
	}
	if l := readLine(); !strings.HasPrefix(l, "221") {
		t.Fatalf("QUIT ack = %q", l)
	}
	if got := envs(); len(got) != 1 || !strings.Contains(string(got[0].Data), "pipelined body") {
		t.Fatalf("envelopes = %+v", got)
	}
}

func TestOverlongLineRejected(t *testing.T) {
	addr, _, stop := startServer(t, Config{})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	r.ReadString('\n') // greeting
	fmt.Fprintf(conn, "EHLO %s\r\n", strings.Repeat("x", 5000))
	// The server must drop the session, not hang or crash.
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed: correct
		}
	}
}

func TestCommandFloodCutOff(t *testing.T) {
	addr, _, stop := startServer(t, Config{})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	r := bufio.NewReader(conn)
	r.ReadString('\n')
	saw421 := false
	for i := 0; i < 1100 && !saw421; i++ {
		fmt.Fprintf(conn, "NOOP\r\n")
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, "421") {
			saw421 = true
		}
	}
	if !saw421 {
		t.Error("command flood never drew 421")
	}
}

func TestImplicitTLSRequiresConfig(t *testing.T) {
	if _, err := NewServer(Config{ImplicitTLS: true, Deliver: func(*Envelope) error { return nil }}); err == nil {
		t.Error("ImplicitTLS without TLS config accepted")
	}
}
