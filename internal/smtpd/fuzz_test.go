package smtpd

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/sanitize"
	"repro/internal/vault"
)

// FuzzSMTPDSession drives one server session with an arbitrary command
// stream pushed through a faultnet-corrupted connection (fragmented
// writes, truncation, mid-stream resets), checking the collection
// pipeline's safety invariants: the session never panics, only complete
// DATA payloads reach Deliver, and everything stored in the vault has
// been sanitized first — no raw digits survive outside redaction tokens.
func FuzzSMTPDSession(f *testing.F) {
	valid := "EHLO fuzz.example\r\n" +
		"MAIL FROM:<alice@gmail.com>\r\n" +
		"RCPT TO:<bob@gmial.com>\r\n" +
		"DATA\r\n" +
		"Subject: hi\r\n\r\nmy card is 4111 1111 1111 1111\r\n.\r\n" +
		"QUIT\r\n"
	f.Add([]byte(valid), int64(1))
	// Truncated mid-DATA: no terminator ever arrives.
	f.Add([]byte("EHLO x\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<c@d.e>\r\nDATA\r\nssn 078-05-1120 and then noth"), int64(2))
	// Dot-stuffing edges and an early terminator.
	f.Add([]byte("HELO x\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<c@d.e>\r\nDATA\r\n..x\r\n.\r\n.\r\nQUIT\r\n"), int64(3))
	// Binary garbage and half a command.
	f.Add([]byte("\x00\xff\x7f EHLO\rMAIL\nRCPT TO:<"), int64(4))
	// Command flood.
	f.Add([]byte(strings.Repeat("NOOP\r\n", 64)), int64(5))

	f.Fuzz(func(t *testing.T, stream []byte, seed int64) {
		if len(stream) > 1<<16 {
			t.Skip("oversized input")
		}
		sani := sanitize.New("fuzz-salt")
		v, err := vault.Open(vault.DeriveKey("fuzz-pass"))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(Config{
			Hostname: "gmial.com",
			Timeout:  100 * time.Millisecond,
			Deliver: func(e *Envelope) error {
				// Only complete payloads may get here: readData consumed the
				// whole body up to the terminator and CRLF-normalized it.
				if len(e.Data) > 0 && !strings.HasSuffix(string(e.Data), "\r\n") {
					t.Errorf("partial DATA reached Deliver: %q", e.Data)
				}
				// Sanitize-then-store, and prove the sanitization held: after
				// Redact, every digit outside a redaction token is zeroed, so
				// a nonzero digit in the stored text means leakage.
				clean, _ := sani.Redact(string(e.Data))
				for i, seg := range strings.Split(clean, "*_|R|_*") {
					if i%2 == 0 && strings.ContainsAny(seg, "123456789") {
						t.Errorf("unsanitized digits reached vault.Put: %q", seg)
					}
				}
				if _, perr := v.Put("gmial.com", "fuzz", e.Received, []byte(clean)); perr != nil {
					t.Errorf("vault.Put: %v", perr)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		fnet := faultnet.New(seed, faultnet.Composite(0.3), faultnet.WithSleep(func(time.Duration) {}))
		clientRaw, serverConn := net.Pipe()
		client := fnet.Wrap(clientRaw)
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer serverConn.Close()
			srv.session(serverConn)
		}()
		// Drain replies so the synchronous pipe never wedges on a reply.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			buf := make([]byte, 1024)
			for {
				if _, rerr := client.Read(buf); rerr != nil {
					return
				}
			}
		}()
		for off := 0; off < len(stream); {
			end := off + 512
			if end > len(stream) {
				end = len(stream)
			}
			if _, werr := client.Write(stream[off:end]); werr != nil {
				break // reset or closed peer: the stream is corrupt from here on
			}
			off = end
		}
		client.Close()
		<-done
		<-drained
	})
}
