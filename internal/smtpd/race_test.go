package smtpd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// TestCloseDuringAcceptStorm hammers the server with connections while
// Close runs concurrently. Under -race this exercises the Accept/Close
// window: a connection handed out by the listener just as Close snapshots
// the session set must not wg.Add concurrently with Close's wg.Wait, and
// must not leak past shutdown.
func TestCloseDuringAcceptStorm(t *testing.T) {
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv, err := NewServer(Config{
			Hostname: "race.test",
			Deliver:  func(*Envelope) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		bound := make(chan net.Addr, 1)
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.ListenAndServe(ctx, "127.0.0.1:0", bound) }()
		addr := (<-bound).String()

		var dialers sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 8; i++ {
			dialers.Add(1)
			go func() {
				defer dialers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.DialTimeout("tcp", addr, time.Second)
					if err != nil {
						return // listener gone: Close won the race
					}
					// Read the greeting (or the connection reset by Close)
					// then hang up; the goal is churn, not a transaction.
					conn.SetDeadline(time.Now().Add(time.Second))
					bufio.NewReader(conn).ReadString('\n')
					conn.Close()
				}
			}()
		}

		time.Sleep(10 * time.Millisecond) // let some sessions get in flight
		srv.Close()
		close(stop)
		dialers.Wait()

		select {
		case <-serveDone:
		case <-time.After(10 * time.Second):
			t.Fatal("Serve did not return after Close")
		}
		// After Close returns, no session may still be registered.
		srv.mu.Lock()
		open := len(srv.conns)
		srv.mu.Unlock()
		if open != 0 {
			t.Fatalf("round %d: %d sessions still registered after Close", round, open)
		}
		cancel()
	}
}

// TestStatsDuringTraffic reads Stats concurrently with live sessions.
func TestStatsDuringTraffic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv, err := NewServer(Config{
		Hostname: "race.test",
		Deliver:  func(*Envelope) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := make(chan net.Addr, 1)
	go srv.ListenAndServe(ctx, "127.0.0.1:0", bound)
	addr := (<-bound).String()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				continue
			}
			fmt.Fprintf(conn, "QUIT\r\n")
			conn.SetDeadline(time.Now().Add(time.Second))
			bufio.NewReader(conn).ReadString('\n')
			conn.Close()
		}
	}()
	for {
		select {
		case <-done:
			srv.Close()
			if sessions, _ := srv.Stats(); sessions == 0 {
				t.Error("expected at least one session counted")
			}
			return
		default:
			srv.Stats()
		}
	}
}
