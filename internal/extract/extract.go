// Package extract is the study's text-extraction module — the stand-in
// for Textract in the pipeline of Figure 2: email bodies and attachments
// go in, plain text comes out, and the output feeds the sensitive-
// information filter.
//
// The real study ran format-specific extractors (and OCR for images) over
// real attachments. Offline we define three self-describing synthetic
// container formats that exercise the same pipeline position:
//
//   - SDOC: a compressed word-processor container (DOCX stand-in);
//   - SPDF: a page/object text container (PDF stand-in);
//   - SIMG: a glyph-bitmap image whose text is recovered by matching
//     glyphs against a built-in font — a miniature OCR.
//
// HTML and plain text are handled natively.
package extract

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Magic numbers of the synthetic containers.
var (
	magicSDOC = []byte("SDOC\x01")
	magicSPDF = []byte("%SPDF-1.0\n")
	magicSIMG = []byte("SIMG\x01")
)

// Errors returned by extractors.
var (
	ErrUnknownFormat = errors.New("extract: unknown format")
	ErrCorrupt       = errors.New("extract: corrupt container")
)

// Text extracts plain text from data, dispatching on magic bytes first
// and the filename extension second. Plain text passes through.
func Text(filename string, data []byte) (string, error) {
	switch {
	case bytes.HasPrefix(data, magicSDOC):
		return sdocText(data)
	case bytes.HasPrefix(data, magicSPDF):
		return spdfText(data)
	case bytes.HasPrefix(data, magicSIMG):
		return simgText(data)
	}
	ext := ""
	if i := strings.LastIndexByte(filename, '.'); i >= 0 {
		ext = strings.ToLower(filename[i+1:])
	}
	switch ext {
	case "html", "htm":
		return HTMLText(string(data)), nil
	case "txt", "csv", "log", "md", "ics", "xml", "":
		return string(data), nil
	case "docx", "doc", "docm":
		// A real-world extension but not our container: treat the payload
		// as opaque; only magic-matched SDOC extracts.
		return "", fmt.Errorf("%w: document extension without SDOC container", ErrUnknownFormat)
	default:
		return "", fmt.Errorf("%w: unrecognized extension", ErrUnknownFormat)
	}
}

// ---------------------------------------------------------------------
// SDOC: flate-compressed body with a length-checked frame.

// BuildSDOC packs text into an SDOC container.
func BuildSDOC(text string) []byte {
	var body bytes.Buffer
	w, _ := flate.NewWriter(&body, flate.BestSpeed)
	io.WriteString(w, text)
	w.Close()
	out := make([]byte, 0, len(magicSDOC)+8+body.Len())
	out = append(out, magicSDOC...)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(text)))
	out = append(out, lenBuf[:]...)
	return append(out, body.Bytes()...)
}

func sdocText(data []byte) (string, error) {
	rest := data[len(magicSDOC):]
	if len(rest) < 8 {
		return "", fmt.Errorf("%w: SDOC header truncated", ErrCorrupt)
	}
	want := binary.BigEndian.Uint64(rest[:8])
	if want > 64<<20 {
		return "", fmt.Errorf("%w: SDOC declares absurd size %d", ErrCorrupt, want)
	}
	r := flate.NewReader(bytes.NewReader(rest[8:]))
	defer r.Close()
	text, err := io.ReadAll(io.LimitReader(r, int64(want)+1))
	if err != nil {
		return "", fmt.Errorf("%w: SDOC body read failed", ErrCorrupt)
	}
	if uint64(len(text)) != want {
		return "", fmt.Errorf("%w: SDOC length %d != declared %d", ErrCorrupt, len(text), want)
	}
	return string(text), nil
}

// ---------------------------------------------------------------------
// SPDF: sequence of text objects "obj <len>\n<bytes>\nendobj\n".

// BuildSPDF packs paragraphs into an SPDF container, one object each.
func BuildSPDF(paragraphs ...string) []byte {
	var b bytes.Buffer
	b.Write(magicSPDF)
	for _, p := range paragraphs {
		fmt.Fprintf(&b, "obj %d\n", len(p))
		b.WriteString(p)
		b.WriteString("\nendobj\n")
	}
	b.WriteString("%%EOF\n")
	return b.Bytes()
}

func spdfText(data []byte) (string, error) {
	rest := data[len(magicSPDF):]
	var out []string
	for {
		if bytes.HasPrefix(rest, []byte("%%EOF")) {
			return strings.Join(out, "\n"), nil
		}
		var n int
		if _, err := fmt.Fscanf(bytes.NewReader(rest), "obj %d\n", &n); err != nil {
			return "", fmt.Errorf("%w: SPDF object header read failed", ErrCorrupt)
		}
		hdrEnd := bytes.IndexByte(rest, '\n')
		if hdrEnd < 0 || n < 0 || hdrEnd+1+n+len("\nendobj\n") > len(rest) {
			return "", fmt.Errorf("%w: SPDF object overruns container", ErrCorrupt)
		}
		body := rest[hdrEnd+1 : hdrEnd+1+n]
		tail := rest[hdrEnd+1+n:]
		if !bytes.HasPrefix(tail, []byte("\nendobj\n")) {
			return "", fmt.Errorf("%w: SPDF missing endobj", ErrCorrupt)
		}
		out = append(out, string(body))
		rest = tail[len("\nendobj\n"):]
	}
}

// ---------------------------------------------------------------------
// SIMG: a 5x7 glyph-bitmap "scan" of text. BuildSIMG renders each rune
// of the (ASCII printable) text into a 5-byte column bitmap; simgText
// "OCRs" the image by nearest-glyph matching, tolerating a limited number
// of flipped bits — which lets tests inject noise like a real scan.

const glyphW = 5

// font maps a subset of characters to 5-column bitmaps (7 bits used per
// column). The exact shapes don't matter; distinctness does.
var font = buildFont()

func buildFont() map[byte][glyphW]byte {
	m := make(map[byte][glyphW]byte)
	charset := []byte("abcdefghijklmnopqrstuvwxyz0123456789 .,@-:/$#")
	for i, ch := range charset {
		var g [glyphW]byte
		seed := uint32(i + 1)
		for c := 0; c < glyphW; c++ {
			seed = seed*1664525 + 1013904223
			g[c] = byte(seed>>24) & 0x7F
		}
		// Guarantee at least one set bit so no glyph is blank.
		g[0] |= 1
		m[ch] = g
	}
	return m
}

// BuildSIMG renders text (lowercased; unsupported runes become spaces)
// into a synthetic image.
func BuildSIMG(text string) []byte {
	text = strings.ToLower(text)
	var b bytes.Buffer
	b.Write(magicSIMG)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(text)))
	b.Write(lenBuf[:])
	for i := 0; i < len(text); i++ {
		g, ok := font[text[i]]
		if !ok {
			g = font[' ']
		}
		b.Write(g[:])
	}
	return b.Bytes()
}

// FlipBits corrupts an SIMG in place-ish (returns a copy) by XOR-ing one
// bit in each of n glyph columns, emulating scanner noise for tests.
func FlipBits(img []byte, n int) []byte {
	out := append([]byte(nil), img...)
	start := len(magicSIMG) + 4
	glyphs := (len(out) - start) / glyphW
	if glyphs <= 0 {
		return out
	}
	for i := 0; i < n; i++ {
		out[start+(i%glyphs)*glyphW] ^= 0x40
	}
	return out
}

func simgText(data []byte) (string, error) {
	rest := data[len(magicSIMG):]
	if len(rest) < 4 {
		return "", fmt.Errorf("%w: SIMG header truncated", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if n < 0 || n*glyphW > len(rest) {
		return "", fmt.Errorf("%w: SIMG glyph data truncated", ErrCorrupt)
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		col := rest[i*glyphW : (i+1)*glyphW]
		ch, dist := nearestGlyph(col)
		if dist > 8 { // unrecognizable smudge
			ch = '?'
		}
		sb.WriteByte(ch)
	}
	return sb.String(), nil
}

func nearestGlyph(col []byte) (byte, int) {
	best := byte('?')
	bestDist := 1 << 30
	for ch, g := range font {
		d := 0
		for c := 0; c < glyphW; c++ {
			d += popcount(col[c] ^ g[c])
		}
		if d < bestDist || (d == bestDist && ch < best) {
			best, bestDist = ch, d
		}
	}
	return best, bestDist
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// HTML

// HTMLText strips tags, drops script/style content and decodes the
// common entities, approximating what a text extractor recovers from an
// HTML email body.
func HTMLText(html string) string {
	var sb strings.Builder
	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			sb.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break // unterminated tag: discard the rest
		}
		tag := strings.ToLower(strings.TrimSpace(html[i+1 : i+end]))
		i += end + 1
		name := tag
		if j := strings.IndexAny(name, " \t\n"); j >= 0 {
			name = name[:j]
		}
		switch name {
		case "script", "style":
			// skip to the closing tag
			closeTag := "</" + name
			j := strings.Index(strings.ToLower(html[i:]), closeTag)
			if j < 0 {
				i = len(html)
				continue
			}
			i += j
			if k := strings.IndexByte(html[i:], '>'); k >= 0 {
				i += k + 1
			} else {
				i = len(html)
			}
		case "br", "p", "/p", "div", "/div", "tr", "/tr", "li", "/li":
			sb.WriteByte('\n')
		}
	}
	return decodeEntities(sb.String())
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`,
	"&apos;", "'", "&nbsp;", " ", "&#39;", "'",
)

func decodeEntities(s string) string { return entityReplacer.Replace(s) }
