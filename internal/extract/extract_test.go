package extract

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPlainPassThrough(t *testing.T) {
	for _, name := range []string{"notes.txt", "data.csv", "cal.ics", "feed.xml", "noext"} {
		got, err := Text(name, []byte("hello world"))
		if err != nil || got != "hello world" {
			t.Errorf("Text(%q) = %q, %v", name, got, err)
		}
	}
}

func TestSDOCRoundTrip(t *testing.T) {
	text := "Visa application for John Lavorato\nAmex 371385129301004 Exp 06/03\n"
	doc := BuildSDOC(text)
	got, err := Text("visa.docx", doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != text {
		t.Errorf("SDOC round trip = %q", got)
	}
}

func TestSDOCCorruption(t *testing.T) {
	doc := BuildSDOC("some text")
	tests := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated header", func(d []byte) []byte { return d[:len(magicSDOC)+3] }},
		{"truncated body", func(d []byte) []byte { return d[:len(d)-3] }},
		{"length mismatch", func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[len(magicSDOC)+7] += 5
			return c
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Text("x.docx", tc.mut(doc)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDocxWithoutContainerRejected(t *testing.T) {
	if _, err := Text("report.docx", []byte("raw bytes")); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("err = %v, want ErrUnknownFormat", err)
	}
}

func TestSPDFRoundTrip(t *testing.T) {
	pdf := BuildSPDF("Page one text.", "Page two: SSN 078-05-1120.")
	got, err := Text("doc.pdf", pdf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "Page one text.") || !strings.Contains(got, "078-05-1120") {
		t.Errorf("SPDF text = %q", got)
	}
}

func TestSPDFEmpty(t *testing.T) {
	got, err := Text("empty.pdf", BuildSPDF())
	if err != nil || got != "" {
		t.Errorf("empty SPDF = %q, %v", got, err)
	}
}

func TestSPDFCorrupt(t *testing.T) {
	pdf := BuildSPDF("content")
	if _, err := Text("x.pdf", pdf[:len(pdf)-8]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated SPDF err = %v", err)
	}
	bad := append([]byte{}, magicSPDF...)
	bad = append(bad, []byte("obj 99999\nshort\nendobj\n%%EOF\n")...)
	if _, err := Text("x.pdf", bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overrun SPDF err = %v", err)
	}
}

func TestSIMGOCRRoundTrip(t *testing.T) {
	text := "password: hunter2 card 4111"
	img := BuildSIMG(text)
	got, err := Text("scan.png", img)
	if err != nil {
		t.Fatal(err)
	}
	if got != text {
		t.Errorf("OCR = %q, want %q", got, text)
	}
}

func TestSIMGOCRWithNoise(t *testing.T) {
	// One flipped bit per glyph must still decode: nearest-glyph matching
	// is the point of the OCR stand-in.
	text := "account 12345 at chase"
	img := FlipBits(BuildSIMG(text), len(text))
	got, err := Text("scan.png", img)
	if err != nil {
		t.Fatal(err)
	}
	if got != text {
		t.Errorf("noisy OCR = %q, want %q", got, text)
	}
}

func TestSIMGTruncated(t *testing.T) {
	img := BuildSIMG("hello")
	if _, err := Text("x.png", img[:len(img)-2]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated SIMG err = %v", err)
	}
	if _, err := Text("x.png", img[:len(magicSIMG)+1]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("headerless SIMG err = %v", err)
	}
}

func TestUnknownBinaryRejected(t *testing.T) {
	if _, err := Text("virus.exe", []byte{0x4D, 0x5A, 0x90}); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("err = %v, want ErrUnknownFormat", err)
	}
}

func TestHTMLText(t *testing.T) {
	html := `<html><head><style>.x{color:red}</style>
<script>alert("evil")</script></head>
<body><p>Dear customer,</p><div>Your order <b>#123</b> shipped.</div>
Use code &quot;SAVE&amp;WIN&quot; &lt;today&gt;</body></html>`
	got := HTMLText(html)
	for _, want := range []string{"Dear customer,", "Your order #123 shipped.", `"SAVE&WIN" <today>`} {
		if !strings.Contains(got, want) {
			t.Errorf("HTMLText missing %q in %q", want, got)
		}
	}
	for _, evil := range []string{"alert", "color:red", "<p>", "<b>"} {
		if strings.Contains(got, evil) {
			t.Errorf("HTMLText leaked %q", evil)
		}
	}
}

func TestHTMLViaText(t *testing.T) {
	got, err := Text("newsletter.html", []byte("<p>unsubscribe here</p>"))
	if err != nil || !strings.Contains(got, "unsubscribe here") {
		t.Errorf("Text html = %q, %v", got, err)
	}
}

func TestHTMLUnterminatedTag(t *testing.T) {
	if got := HTMLText("text before <a href="); got != "text before " {
		t.Errorf("unterminated tag = %q", got)
	}
}

func TestHTMLLineBreaks(t *testing.T) {
	got := HTMLText("a<br>b<p>c</p>d")
	if !strings.Contains(got, "a\nb") {
		t.Errorf("br not translated: %q", got)
	}
}

// Property: SDOC and SIMG round-trip arbitrary inputs (SIMG over its
// charset).
func TestSDOCRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, err := sdocText(BuildSDOC(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSIMGRoundTripProperty(t *testing.T) {
	const charset = "abcdefghijklmnopqrstuvwxyz0123456789 .,@-:/$#"
	f := func(raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		var sb strings.Builder
		for _, b := range raw {
			sb.WriteByte(charset[int(b)%len(charset)])
		}
		s := sb.String()
		got, err := simgText(BuildSIMG(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
