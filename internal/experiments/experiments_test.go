package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// The suite is expensive (a full collection run + ecosystem); share it.
var shared = NewSuite(20160604)

func TestAllExperiments(t *testing.T) {
	exps, err := shared.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		t.Run(strings.ReplaceAll(e.ID, " ", ""), func(t *testing.T) {
			if seen[e.ID] {
				t.Fatalf("duplicate experiment ID %s", e.ID)
			}
			seen[e.ID] = true
			if e.Body == "" {
				t.Error("empty body")
			}
			if len(e.Checks) == 0 {
				t.Error("no checks")
			}
			for _, c := range e.Checks {
				if !c.OK {
					t.Errorf("shape check failed: %s", c)
				}
			}
			if !strings.Contains(e.String(), e.ID) {
				t.Error("String() missing ID")
			}
		})
	}
}

func TestExperimentOK(t *testing.T) {
	e := &Experiment{ID: "x", Checks: []Check{{OK: true}, {OK: true}}}
	if !e.OK() {
		t.Error("all-ok experiment reported not OK")
	}
	e.Checks = append(e.Checks, Check{OK: false})
	if e.OK() {
		t.Error("failing check unnoticed")
	}
}

func TestCheckString(t *testing.T) {
	c := check("name", "p", "m", false)
	if !strings.Contains(c.String(), "FAIL") {
		t.Errorf("failing check renders %q", c.String())
	}
	c.OK = true
	if strings.Contains(c.String(), "FAIL") {
		t.Errorf("passing check renders %q", c.String())
	}
}

func TestLogBucket(t *testing.T) {
	tests := []struct {
		v    float64
		want int
	}{{0, 0}, {0.5, 0}, {1, 1}, {9, 1}, {10, 2}, {1e8, 9}, {1e12, 9}}
	for _, tc := range tests {
		if got := logBucket(tc.v); got != tc.want {
			t.Errorf("logBucket(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestExperimentsJSONRoundTrip(t *testing.T) {
	exps, err := shared.All()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(exps)
	if err != nil {
		t.Fatal(err)
	}
	var back []*Experiment
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(exps) {
		t.Fatalf("round trip lost experiments: %d vs %d", len(back), len(exps))
	}
	for i := range exps {
		if back[i].ID != exps[i].ID || len(back[i].Checks) != len(exps[i].Checks) {
			t.Fatalf("experiment %d drifted", i)
		}
	}
}
