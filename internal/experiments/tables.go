package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/dnsserve"
	"repro/internal/dnswire"
	"repro/internal/ecosys"
	"repro/internal/honey"
	"repro/internal/par"
	"repro/internal/probe"
	"repro/internal/resolve"
	"repro/internal/sanitize"
	"repro/internal/spamfilter"
)

// Table1 regenerates the DNS settings table by installing the example
// zone in an authoritative server and resolving it back through the stub
// resolver — wildcard and apex MX priority 1 and A records at TTL 300.
func (s *Suite) Table1() (*Experiment, error) {
	store := dnsserve.NewStore()
	store.Put(dnsserve.TypoZone("exampel.com", dnswire.IPv4(1, 1, 1, 1)))
	srv := dnsserve.NewServer(store)
	r := resolve.New(resolve.ExchangerFunc(
		func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			return srv.Answer(q), nil
		}), resolve.WithSeed(1))

	ctx := context.Background()
	var rows []string
	addRow := func(fqdn string, rr dnswire.RR) {
		switch rr.Type {
		case dnswire.TypeMX:
			rows = append(rows, fmt.Sprintf("%-18s %4d  MX  %d  %s.", fqdn, rr.TTL, rr.Preference, rr.Exchange))
		case dnswire.TypeA:
			rows = append(rows, fmt.Sprintf("%-18s %4d  A   NA %s", fqdn, rr.TTL, dnswire.FormatIP(rr.IP)))
		}
	}
	zone, _ := store.Find("exampel.com")
	for _, fqdn := range []string{"sub.exampel.com", "exampel.com"} {
		for _, typ := range []dnswire.Type{dnswire.TypeMX, dnswire.TypeA} {
			rrs, _ := zone.Lookup(fqdn, typ)
			for _, rr := range rrs {
				addRow(fqdn, rr)
			}
		}
	}

	mxs, err := r.LookupMX(ctx, "anything.exampel.com")
	if err != nil {
		return nil, fmt.Errorf("experiments: table 1 wildcard resolve: %w", err)
	}
	hosts, implicit, err := r.MailHosts(ctx, "exampel.com")
	if err != nil {
		return nil, fmt.Errorf("experiments: table 1 mail route: %w", err)
	}

	e := &Experiment{
		ID:    "Table 1",
		Title: "DNS settings for an example typo domain",
		Body: "FQDN               TTL  TYPE pri record\n" + strings.Join(rows, "\n") + "\n" +
			fmt.Sprintf("wildcard MX for anything.exampel.com -> %s (pref %d)\n", mxs[0].Host, mxs[0].Preference),
	}
	e.Checks = append(e.Checks,
		check("wildcard subdomains route to apex", "*.exampel.com MX 1 exampel.com",
			fmt.Sprintf("%s pref %d", mxs[0].Host, mxs[0].Preference),
			mxs[0].Host == "exampel.com" && mxs[0].Preference == 1),
		check("apex mail route explicit", "MX exampel.com",
			fmt.Sprintf("hosts=%v implicit=%v", hosts, implicit),
			len(hosts) == 1 && hosts[0] == "exampel.com" && !implicit),
		check("TTL", "300", fmt.Sprintf("%d", dnsserve.DefaultTTL), dnsserve.DefaultTTL == 300),
	)
	return e, nil
}

// Table2 evaluates the sensitive-information detectors on the synthetic
// Enron-like corpus using the paper's sampled protocol.
func (s *Suite) Table2() (*Experiment, error) {
	docs := corpus.GenerateEnron(corpus.DefaultEnronOptions())
	labeled := make([]sanitize.LabeledDoc, len(docs))
	for i, d := range docs {
		labeled[i] = d.Labeled()
	}
	rng := par.Rand(s.Seed, 0)
	scores := sanitize.EvaluateSampled(labeled, 20, rng)

	e := &Experiment{ID: "Table 2", Title: "Precision and sensitivity of the regex filtering module",
		Body: sanitize.FormatTable(scores)}

	strongSens := true
	for _, k := range []sanitize.Kind{sanitize.KindCreditCard, sanitize.KindSSN, sanitize.KindEIN,
		sanitize.KindVIN, sanitize.KindZip, sanitize.KindPassword, sanitize.KindUsername} {
		if scores[k].Sensitivity < 0.9 {
			strongSens = false
		}
	}
	e.Checks = append(e.Checks,
		check("sensitivity ~1.00 for structured identifiers", ">= 0.95 for most rows",
			fmt.Sprintf("cc=%.2f ssn=%.2f vin=%.2f", scores[sanitize.KindCreditCard].Sensitivity,
				scores[sanitize.KindSSN].Sensitivity, scores[sanitize.KindVIN].Sensitivity),
			strongSens),
		check("credit card precision high", "0.93",
			fmt.Sprintf("%.2f", scores[sanitize.KindCreditCard].Precision),
			scores[sanitize.KindCreditCard].Precision >= 0.85),
		check("date/zip near-perfect", "1.00 / 1.00",
			fmt.Sprintf("%.2f / %.2f", scores[sanitize.KindDate].F1, scores[sanitize.KindZip].F1),
			scores[sanitize.KindDate].F1 >= 0.9 && scores[sanitize.KindZip].F1 >= 0.9),
	)
	return e, nil
}

// Table3 evaluates the Layer 2 scorer on the four spam datasets.
func (s *Suite) Table3() (*Experiment, error) {
	scorer := spamfilter.NewScorer()
	var rows []string
	type pr struct{ precision, recall float64 }
	results := map[corpus.Dataset]pr{}
	for _, ds := range corpus.AllDatasets() {
		tp, fp, fn := 0, 0, 0
		for _, lm := range corpus.Generate(ds) {
			pred := scorer.IsSpam(lm.Msg) || spamfilter.HasForbiddenArchive(lm.Msg)
			switch {
			case pred && lm.Spam:
				tp++
			case pred && !lm.Spam:
				fp++
			case !pred && lm.Spam:
				fn++
			}
		}
		p := pr{}
		if tp+fp > 0 {
			p.precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			p.recall = float64(tp) / float64(tp+fn)
		}
		results[ds] = p
		precStr := fmt.Sprintf("%.2f", p.precision)
		if ds == corpus.DatasetUntroubled {
			precStr = "-" // all-spam corpus: precision is undefined/uninformative
		}
		rows = append(rows, fmt.Sprintf("%-14s %5s %8.2f", ds, precStr, p.recall))
	}
	e := &Experiment{ID: "Table 3", Title: "Evaluation of the Layer 2 scorer on four datasets",
		Body: "Dataset        Prec.  Recall\n" + strings.Join(rows, "\n") + "\n"}

	mixedOK := true
	for _, ds := range []corpus.Dataset{corpus.DatasetTREC, corpus.DatasetCSDMC, corpus.DatasetSpamAssassin} {
		p := results[ds]
		if p.precision < 0.93 || p.recall < 0.7 || p.recall > 0.97 {
			mixedOK = false
		}
	}
	unt := results[corpus.DatasetUntroubled].recall
	e.Checks = append(e.Checks,
		check("mixed corpora: high precision, ~0.8 recall", "prec 0.97-0.98, recall 0.79-0.87",
			fmt.Sprintf("TREC %.2f/%.2f CSDMC %.2f/%.2f SA %.2f/%.2f",
				results[corpus.DatasetTREC].precision, results[corpus.DatasetTREC].recall,
				results[corpus.DatasetCSDMC].precision, results[corpus.DatasetCSDMC].recall,
				results[corpus.DatasetSpamAssassin].precision, results[corpus.DatasetSpamAssassin].recall),
			mixedOK),
		check("Untroubled recall collapses", "0.23", fmt.Sprintf("%.2f", unt),
			unt < 0.45 && unt < results[corpus.DatasetTREC].recall),
	)
	return e, nil
}

// Table4 scans the ecosystem's ctypos for SMTP support.
func (s *Suite) Table4() (*Experiment, error) {
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	var domains []string
	for _, d := range eco.Ctypos() {
		domains = append(domains, d.Name)
	}
	table := probe.Table4(probe.Scan(context.Background(), domains, &probe.EcoNet{Eco: eco}))
	total := len(domains)
	var rows []string
	order := []ecosys.SMTPSupport{
		ecosys.SupportNoRecords, ecosys.SupportNoInfo, ecosys.SupportNoEmail,
		ecosys.SupportPlain, ecosys.SupportTLSErrors, ecosys.SupportTLSOK,
	}
	frac := func(sup ecosys.SMTPSupport) float64 { return float64(table[sup]) / float64(total) }
	for _, sup := range order {
		rows = append(rows, fmt.Sprintf("%-28s %7d %5.1f%%", sup, table[sup], 100*frac(sup)))
	}
	e := &Experiment{ID: "Table 4", Title: "SMTP support of typosquatting domains",
		Body: fmt.Sprintf("Support status                 Count %%total   (n=%d)\n%s\n", total, strings.Join(rows, "\n"))}
	tls := frac(ecosys.SupportTLSOK) + frac(ecosys.SupportTLSErrors) + frac(ecosys.SupportPlain)
	e.Checks = append(e.Checks,
		check("~43% support SMTP", "43.3%", fmt.Sprintf("%.1f%%", 100*tls), tls > 0.25 && tls < 0.75),
		check("plain SMTP negligible", "0.04%", fmt.Sprintf("%.2f%%", 100*frac(ecosys.SupportPlain)),
			frac(ecosys.SupportPlain) < 0.02),
		check("clean STARTTLS is the largest class", "37.1%",
			fmt.Sprintf("%.1f%%", 100*frac(ecosys.SupportTLSOK)),
			table[ecosys.SupportTLSOK] >= table[ecosys.SupportTLSErrors]),
	)
	return e, nil
}

// Table5 runs the honey probe over the ecosystem's typosquatting domains.
func (s *Suite) Table5() (*Experiment, error) {
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	camp := &honey.Campaign{Eco: eco, Beacon: honey.NewBeacon(nil), Key: "study-key", From: "probe@study.example"}
	var domains []string
	for _, d := range eco.TyposquattingDomains() {
		domains = append(domains, d.Name)
	}
	t5, outcomes := camp.RunProbe(domains)

	order := []ecosys.ProbeBehavior{
		ecosys.BehaviorAccept, ecosys.BehaviorBounce, ecosys.BehaviorTimeout,
		ecosys.BehaviorNetError, ecosys.BehaviorOther,
	}
	var rows []string
	for _, b := range order {
		rows = append(rows, fmt.Sprintf("%-14s %8d %8d", b, t5.Public[b], t5.Private[b]))
	}
	pub, priv := t5.Totals()
	e := &Experiment{ID: "Table 5", Title: "Honey email probe outcomes by registration privacy",
		Body: fmt.Sprintf("Outcome        Public   Private\n%s\nTotal          %8d %8d\n", strings.Join(rows, "\n"), pub, priv)}

	acceptRate := float64(t5.Public[ecosys.BehaviorAccept]+t5.Private[ecosys.BehaviorAccept]) / float64(pub+priv)
	privAccept := float64(t5.Private[ecosys.BehaviorAccept]) / float64(priv)
	pubAccept := float64(t5.Public[ecosys.BehaviorAccept]) / float64(pub)
	e.Checks = append(e.Checks,
		check("most probes fail", "~14% accepted overall", fmt.Sprintf("%.1f%% accepted", 100*acceptRate),
			acceptRate < 0.6),
		check("private registrations accept more", "6,099/22,341 vs 1,170/28,654",
			fmt.Sprintf("private %.2f vs public %.2f", privAccept, pubAccept),
			privAccept > pubAccept),
		check("errors span bounce/timeout/network", "all rows populated",
			fmt.Sprintf("%d outcomes", len(outcomes)),
			t5.Public[ecosys.BehaviorBounce]+t5.Private[ecosys.BehaviorBounce] > 0 &&
				t5.Public[ecosys.BehaviorTimeout]+t5.Private[ecosys.BehaviorTimeout] > 0 &&
				t5.Public[ecosys.BehaviorNetError]+t5.Private[ecosys.BehaviorNetError] > 0),
	)
	return e, nil
}

// Table6 computes MX concentration among accepting domains, plus the
// honey-token follow-up's open/access scarcity.
func (s *Suite) Table6() (*Experiment, error) {
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	beacon := honey.NewBeacon(nil)
	shell := honey.NewShellAccount(beacon)
	camp := &honey.Campaign{Eco: eco, Beacon: beacon, Shell: shell, Key: "study-key", From: "victim@study.example"}
	var domains []string
	for _, d := range eco.TyposquattingDomains() {
		domains = append(domains, d.Name)
	}
	_, outcomes := camp.RunProbe(domains)
	accepting := honey.Accepting(outcomes)
	t6 := camp.Table6(accepting)

	type row struct {
		mx string
		n  int
	}
	var rows []row
	total := 0
	for mx, n := range t6 {
		rows = append(rows, row{mx, n})
		total += n
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].mx < rows[j].mx
	})
	var lines []string
	cum := 0.0
	top8 := 0.0
	for i, r := range rows {
		pct := 100 * float64(r.n) / float64(total)
		cum += pct
		if i < 10 {
			lines = append(lines, fmt.Sprintf("%-22s %6d %5.1f%% %5.1f%%", r.mx, r.n, pct, cum))
		}
		if i < 8 {
			top8 = cum
		}
	}

	rng := par.Rand(s.Seed, 7)
	rep := camp.RunHoney(accepting, time.Date(2017, 6, 15, 9, 0, 0, 0, time.UTC), rng)

	e := &Experiment{ID: "Table 6", Title: "Mail exchanger distribution of accepting domains (+ honey tokens)",
		Body: fmt.Sprintf("MX domain               Total     %%   CDF\n%s\nhoney: sent=%d opened-domains=%d token-accesses=%d credential-uses=%d\n",
			strings.Join(lines, "\n"), rep.EmailsSent, rep.Opens, rep.TokenAccesses, rep.CredentialUses)}

	topShare := 0.0
	if total > 0 && len(rows) > 0 {
		topShare = float64(rows[0].n) / float64(total)
	}
	e.Checks = append(e.Checks,
		check("top MX host dominates", "43.6% (b-io.co)", fmt.Sprintf("%.1f%%", 100*topShare), topShare > 0.2),
		check("8 hosts cover ~95%", "95.4%", fmt.Sprintf("%.1f%%", top8), top8 > 0.6),
		check("opens rare, hours-scale, rarely acted on", "22 opens, 2 token accesses of ~30k emails",
			fmt.Sprintf("%d opens, %d accesses of %d emails", rep.Opens, rep.TokenAccesses, rep.EmailsSent),
			rep.Opens < rep.EmailsSent/40 && rep.TokenAccesses <= rep.Opens+2),
	)
	return e, nil
}
