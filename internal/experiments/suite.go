// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result carrying
// (a) the regenerated rows/series, (b) a text rendering in the paper's
// layout, and (c) shape checks comparing the measurement to the paper's
// reported values — who wins, by roughly what factor, where the
// crossovers fall.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ecosys"
	"repro/internal/par"
)

// Check is one paper-vs-measured comparison.
type Check struct {
	Name     string
	Paper    string // what the paper reports
	Measured string // what this run measured
	OK       bool   // whether the shape holds
}

func (c Check) String() string {
	mark := "ok  "
	if !c.OK {
		mark = "FAIL"
	}
	return fmt.Sprintf("[%s] %-46s paper: %-28s measured: %s", mark, c.Name, c.Paper, c.Measured)
}

// Experiment is the common shape of every driver's output.
type Experiment struct {
	ID     string // "Table 2", "Figure 5", ...
	Title  string
	Body   string // the regenerated table/figure in text form
	Checks []Check
}

// OK reports whether every check passed.
func (e *Experiment) OK() bool {
	for _, c := range e.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

func (e *Experiment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n%s\n", e.ID, e.Title, e.Body)
	for _, c := range e.Checks {
		fmt.Fprintln(&sb, c)
	}
	return sb.String()
}

// Suite shares the expensive substrate (a full collection run and an
// ecosystem snapshot) between experiments.
type Suite struct {
	Seed int64
	// Streaming runs the collection through core's chunked two-pass mode
	// (bounded working set) instead of materializing the whole window;
	// results are byte-identical either way, so every experiment and
	// check is unaffected by the choice.
	Streaming bool

	once  sync.Once
	study *core.Study
	res   *core.Result
	eco   *ecosys.Ecosystem
	err   error
}

// NewSuite creates a lazy suite; the collection run happens on first use.
func NewSuite(seed int64) *Suite { return &Suite{Seed: seed} }

// materialize runs the study and generates the ecosystem once.
func (s *Suite) materialize() error {
	s.once.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Streaming = s.Streaming
		study, err := core.NewStudy(cfg)
		if err != nil {
			s.err = err
			return
		}
		res, err := study.Run()
		if err != nil {
			s.err = err
			return
		}
		ecoCfg := ecosys.DefaultConfig()
		ecoCfg.Seed = s.Seed + 1000
		s.study, s.res = study, res
		s.eco = ecosys.Generate(ecoCfg)
	})
	return s.err
}

// Collection returns the shared study and its result.
func (s *Suite) Collection() (*core.Study, *core.Result, error) {
	if err := s.materialize(); err != nil {
		return nil, nil, err
	}
	return s.study, s.res, nil
}

// Ecosystem returns the shared ecosystem snapshot.
func (s *Suite) Ecosystem() (*ecosys.Ecosystem, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.eco, nil
}

// All runs every experiment and returns them in the paper's order. The
// drivers only read the shared substrate (each sorts and aggregates into
// locals), so once it is materialized they run concurrently under
// par.MapErr; the ordered merge keeps the output identical to a
// sequential pass regardless of worker count.
func (s *Suite) All() ([]*Experiment, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	runs := []func() (*Experiment, error){
		s.Table1, s.Table2, s.Table3,
		s.Figure3, s.Figure4, s.Figure5, s.Figure6, s.Figure7,
		s.Table4, s.Figure8, s.Figure9,
		s.Regression, s.Economics,
		s.Table5, s.Table6,
	}
	out, err := par.MapErr(s.Seed, runs,
		func(i int, run func() (*Experiment, error), _ *rand.Rand) (*Experiment, error) {
			return run()
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// check builds a Check.
func check(name, paper, measured string, ok bool) Check {
	return Check{Name: name, Paper: paper, Measured: measured, OK: ok}
}
