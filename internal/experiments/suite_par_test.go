package experiments

import (
	"strings"
	"testing"

	"repro/internal/par"
)

func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	exps, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, e := range exps {
		sb.WriteString(e.String())
	}
	return sb.String()
}

// TestAllSeedEquivalence asserts the determinism-under-parallelism
// contract on the experiment drivers: for several seeds, the rendering
// of every table and figure is byte-identical whether the fifteen
// drivers run sequentially or concurrently. The substrate is
// materialized once per seed (its own parallel equivalence is covered
// by the ecosys and core seed-equivalence tests), so the repeated All
// calls here exercise only the driver fan-out.
func TestAllSeedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite materialization; skipped in -short mode")
	}
	defer par.SetWorkers(0)
	for _, seed := range []int64{9, 101, 20170301} {
		s := NewSuite(seed)
		par.SetWorkers(1)
		ref := renderAll(t, s)
		for _, w := range []int{2, 8} {
			par.SetWorkers(w)
			if got := renderAll(t, s); got != ref {
				t.Fatalf("seed %d: workers=%d rendering differs from sequential run", seed, w)
			}
		}
	}
}

// TestAllSeedEquivalenceColdStart repeats the check for one seed with a
// fresh suite materialized entirely under the parallel setting, so the
// sharded study run and ecosystem generation feed the drivers too.
func TestAllSeedEquivalenceColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite materialization; skipped in -short mode")
	}
	defer par.SetWorkers(0)
	const seed = 9
	par.SetWorkers(1)
	ref := renderAll(t, NewSuite(seed))
	par.SetWorkers(8)
	if got := renderAll(t, NewSuite(seed)); got != ref {
		t.Fatal("workers=8 cold-start rendering differs from sequential run")
	}
}
