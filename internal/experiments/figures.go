package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// renderDailySeries draws three log-scale sparkline rows (spam /
// filtered / true) over the collection window, bucketed by week.
func renderDailySeries(spam, filtered, trueTypos *simclock.DaySeries) string {
	const bucket = 7
	var sb strings.Builder
	row := func(name string, ds *simclock.DaySeries) {
		fmt.Fprintf(&sb, "%-9s ", name)
		for i := 0; i < len(ds.Counts); i += bucket {
			var sum float64
			for j := i; j < i+bucket && j < len(ds.Counts); j++ {
				sum += ds.Counts[j]
			}
			sb.WriteByte(" .:-=+*#%@"[logBucket(sum)])
		}
		fmt.Fprintf(&sb, "  total %.0f\n", ds.Total())
	}
	row("spam", spam)
	row("filtered", filtered)
	row("true", trueTypos)
	sb.WriteString("           (one column per week, log scale: ' '=0 ... '@'>=1e8)\n")
	return sb.String()
}

func logBucket(v float64) int {
	b := 0
	for v >= 1 && b < 9 {
		v /= 10
		b++
	}
	return b
}

// Figure3 regenerates the daily receiver-typo email series.
func (s *Suite) Figure3() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	e := &Experiment{ID: "Figure 3", Title: "Daily receiver typo emails by funnel category",
		Body: renderDailySeries(res.ReceiverSpamDaily, res.ReceiverFilteredDaily, res.ReceiverTrueDaily)}

	spamT, trueT := res.ReceiverSpamDaily.Total(), res.ReceiverTrueDaily.Total()
	// Count active days of true receiver typos outside outages.
	active, days := 0, 0
	for day, c := range res.ReceiverTrueDaily.Counts {
		if inOutage(day) {
			continue
		}
		days++
		if c > 0 {
			active++
		}
	}
	e.Checks = append(e.Checks,
		check("spam dominates by orders of magnitude", "~1e4-1e5/day vs ~10/day",
			fmt.Sprintf("spam/true = %.0fx", spamT/trueT), spamT > 100*trueT),
		check("receiver typos arrive near-constantly", "near-constant rate",
			fmt.Sprintf("%d of %d days active", active, days), active > days/2),
		check("collection gaps present", "infrastructure outages visible",
			fmt.Sprintf("%d outage windows", len(core.DefaultConfig().Outages)),
			len(core.DefaultConfig().Outages) > 0),
		check("manual audit: most survivors are real (§4.3)", "80% of sampled survivors not spam",
			fmt.Sprintf("%.0f%% (%.0f of %.0f/yr)", 100*res.AuditPrecision,
				res.CorrectedSurvivorsYearly, res.SurvivorsYearly),
			res.AuditPrecision > 0.6 && res.AuditPrecision < 0.99),
	)
	return e, nil
}

// Figure4 regenerates the daily SMTP-typo email series.
func (s *Suite) Figure4() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	body := renderDailySeries(res.SMTPSpamDaily, res.SMTPFilteredDaily, res.SMTPTrueDaily)

	// Section 4.4.2's persistence analysis rides along with this figure:
	// how long does a user's SMTP misconfiguration last?
	single, under1d, under1w := 0, 0, 0
	maxPersistence := 0.0
	for _, p := range res.SMTPPersistence {
		if p == 0 {
			single++
		}
		if p < 1 {
			under1d++
		}
		if p < 7 {
			under1w++
		}
		if p > maxPersistence {
			maxPersistence = p
		}
	}
	leFour := 0
	for _, n := range res.SMTPEpisodeSizes {
		if n <= 4 {
			leFour++
		}
	}
	nEp := len(res.SMTPPersistence)
	if nEp > 0 {
		body += fmt.Sprintf(
			"persistence (%d episodes): single-email %.0f%%, <1 day %.0f%%, <1 week %.0f%%, max %.0f days, <=4 emails %.0f%%\n",
			nEp, 100*float64(single)/float64(nEp), 100*float64(under1d)/float64(nEp),
			100*float64(under1w)/float64(nEp), maxPersistence, 100*float64(leFour)/float64(nEp))
	}

	e := &Experiment{ID: "Figure 4", Title: "Daily SMTP typo emails by funnel category",
		Body: body}
	if nEp > 0 {
		e.Checks = append(e.Checks,
			check("70% of SMTP typos are one-off", "70% single email",
				fmt.Sprintf("%.0f%%", 100*float64(single)/float64(nEp)),
				float64(single)/float64(nEp) > 0.55),
			check("90% of episodes last under a week", "83% <1 day, 90% <1 week, max 209 days",
				fmt.Sprintf("%.0f%% <1d, %.0f%% <1w, max %.0f", 100*float64(under1d)/float64(nEp),
					100*float64(under1w)/float64(nEp), maxPersistence),
				float64(under1w)/float64(nEp) > 0.8 && maxPersistence <= 209),
			check("90% of users send four or fewer emails", "90%",
				fmt.Sprintf("%.0f%%", 100*float64(leFour)/float64(nEp)),
				float64(leFour)/float64(nEp) > 0.8),
		)
	}

	// SMTP typos land sparsely in small batches.
	recvActive, smtpActive := 0, 0
	for day := range res.SMTPTrueDaily.Counts {
		if inOutage(day) {
			continue
		}
		if res.SMTPTrueDaily.Counts[day] > res.SMTPTrueDaily.Total()/float64(res.Days)+1 {
			// day visibly above the mean: a batch
			smtpActive++
		}
		if res.ReceiverTrueDaily.Counts[day] > 0 {
			recvActive++
		}
	}
	e.Checks = append(e.Checks,
		check("SMTP typos sparse vs receiver typos", "sparse small batches",
			fmt.Sprintf("batch days %d << receiver active days %d", smtpActive, recvActive),
			smtpActive < recvActive),
		check("order of magnitude fewer SMTP typos", "415-5,970 vs 6,041/yr",
			fmt.Sprintf("[%.0f, %.0f] vs %.0f", res.SMTPTypoYearlyLow, res.SMTPTypoYearlyHigh, res.CorrectedSurvivorsYearly),
			res.SMTPTypoYearlyHigh < res.CorrectedSurvivorsYearly),
	)
	return e, nil
}

func inOutage(day int) bool {
	for _, o := range core.DefaultConfig().Outages {
		if day >= o[0] && day < o[1] {
			return true
		}
	}
	return false
}

// Figure5 regenerates the cumulative-sum-per-domain plot.
func (s *Suite) Figure5() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	type row struct {
		name  string
		count float64
	}
	var rows []row
	var counts []float64
	for _, d := range core.ReceiverTypoDomains() {
		st := res.PerDomain[d.Name]
		rows = append(rows, row{d.Name, st.ReceiverYearly})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	var total float64
	for _, r := range rows {
		counts = append(counts, r.count)
		total += r.count
	}
	var lines []string
	cum := 0.0
	for _, r := range rows {
		cum += r.count
		lines = append(lines, fmt.Sprintf("%-18s %8.0f/yr  cum %.2f", r.name, r.count, cum/total))
	}
	e := &Experiment{ID: "Figure 5", Title: "Cumulative sum of receiver typo emails by domain",
		Body: strings.Join(lines, "\n") + "\n"}

	majority := stats.TopShareCount(counts, 0.5)
	p99 := stats.TopShareCount(counts, 0.99)
	top2AreFF := rows[0].count > 0 && rows[1].count > 0
	e.Checks = append(e.Checks,
		check("a couple of domains take the majority", "2 domains",
			fmt.Sprintf("%d domains", majority), majority <= 6),
		check("a dozen take 99%", "12 domains", fmt.Sprintf("%d domains", p99), p99 <= 20),
		check("top domains target the most popular providers", "ohtlook/outlo0k-class typos on top",
			fmt.Sprintf("top: %s, %s", rows[0].name, rows[1].name), top2AreFF),
	)
	return e, nil
}

// Figure6 regenerates the sensitive-information heatmap.
func (s *Suite) Figure6() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	// Collect labels and domains with any counts.
	labelSet := map[string]bool{}
	var domains []string
	for dom, m := range res.SensitiveHeatmap {
		domains = append(domains, dom)
		for l := range m {
			labelSet[l] = true
		}
	}
	sort.Strings(domains)
	var labels []string
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s", "label\\domain")
	shown := domains
	if len(shown) > 8 {
		// Show the densest 8 domains.
		sort.Slice(shown, func(i, j int) bool {
			return heatTotal(res, shown[i]) > heatTotal(res, shown[j])
		})
		shown = shown[:8]
		sort.Strings(shown)
	}
	for _, d := range shown {
		fmt.Fprintf(&sb, " %12s", strings.TrimSuffix(d, ".com"))
	}
	sb.WriteByte('\n')
	for _, l := range labels {
		fmt.Fprintf(&sb, "%-16s", l)
		for _, d := range shown {
			fmt.Fprintf(&sb, " %12d", res.SensitiveHeatmap[d][l])
		}
		sb.WriteByte('\n')
	}

	yop := res.SensitiveHeatmap["yopail.com"]
	credCount := yop["username"] + yop["password"]
	e := &Experiment{ID: "Figure 6", Title: "Sensitive information types per typo domain",
		Body: sb.String()}
	e.Checks = append(e.Checks,
		check("disposable-mail typos collect credentials", "yopmail typo heavy in username/password",
			fmt.Sprintf("yopail.com creds = %d", credCount), credCount > 0),
		check("several identifier types observed", "7 types in the heatmap",
			fmt.Sprintf("%d labels", len(labels)), len(labels) >= 4),
	)
	return e, nil
}

func heatTotal(res *core.Result, dom string) int {
	t := 0
	for _, n := range res.SensitiveHeatmap[dom] {
		t += n
	}
	return t
}

// Figure7 regenerates the attachment-extension histogram.
func (s *Suite) Figure7() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	var rows []extRow
	for ext, n := range res.AttachmentExts {
		rows = append(rows, extRow{ext, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].ext < rows[j].ext
	})
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%-6s %6d %s", r.ext, r.n, strings.Repeat("#", logBucket(float64(r.n))*4)))
	}
	e := &Experiment{ID: "Figure 7", Title: "Attachment extensions among true typo emails",
		Body: strings.Join(lines, "\n") + "\n"}

	noArchives := true
	for _, r := range rows {
		if r.ext == "zip" || r.ext == "rar" {
			noArchives = false
		}
	}
	e.Checks = append(e.Checks,
		check("txt leads", "txt 4571 of ~8.4k", topExt(rows), len(rows) > 0 && rows[0].ext == "txt"),
		check("document/image mix", "jpg, pdf, png, docx follow",
			fmt.Sprintf("%d extensions", len(rows)), len(rows) >= 5),
		check("no ZIP/RAR among true typos", "discarded during filtering",
			fmt.Sprintf("archives present: %v", !noArchives), noArchives),
	)
	return e, nil
}

type extRow struct {
	ext string
	n   int
}

func topExt(rows []extRow) string {
	if len(rows) == 0 {
		return "none"
	}
	return fmt.Sprintf("%s %d", rows[0].ext, rows[0].n)
}

// Figure8 regenerates the concentration curves: cumulative share of typo
// domains by mail server and by registrant.
func (s *Suite) Figure8() (*Experiment, error) {
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	mxCount := map[string]float64{}
	regCount := map[int]float64{}
	for _, d := range eco.TyposquattingDomains() {
		for _, mx := range d.MX {
			mxCount[mx]++
		}
		if !d.Registrant.Private && d.Registrant.Record.FilledFields() >= 4 {
			regCount[d.Registrant.ID]++
		}
	}
	var mxs, regs []float64
	for _, n := range mxCount {
		mxs = append(mxs, n)
	}
	for _, n := range regCount {
		regs = append(regs, n)
	}
	mxMajority := stats.TopShareCount(mxs, 0.5)
	regMajority := stats.TopShareCount(regs, 0.5)
	regFrac := float64(regMajority) / float64(len(regs))
	mxShares := stats.CumulativeShares(mxs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "mail servers: %d total; top %d carry the majority\n", len(mxs), mxMajority)
	fmt.Fprintf(&sb, "registrants:  %d clustered; top %d (%.1f%%) own the majority\n", len(regs), regMajority, 100*regFrac)
	fmt.Fprintf(&sb, "top-10 MX cumulative shares: ")
	for i := 0; i < 10 && i < len(mxShares); i++ {
		fmt.Fprintf(&sb, "%.2f ", mxShares[i])
	}
	sb.WriteByte('\n')

	e := &Experiment{ID: "Figure 8", Title: "Cumulative typo domains by mail server and registrant",
		Body: sb.String()}
	e.Checks = append(e.Checks,
		check("a few mail servers carry the majority", "11 for a third, 51 for majority",
			fmt.Sprintf("%d servers", mxMajority), mxMajority <= 20),
		check("few registrants own the majority", "2.3% of registrants",
			fmt.Sprintf("%.1f%%", 100*regFrac), regFrac < 0.1),
		check("long tail exists", "heavy long tail",
			fmt.Sprintf("%d registrants total", len(regs)), len(regs) > 10*regMajority),
	)
	return e, nil
}

// Figure9 regenerates the per-mistake-class relative popularity plot.
func (s *Suite) Figure9() (*Experiment, error) {
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	pop := core.MistakePopularity(eco)
	ops := []distance.EditOp{distance.OpAddition, distance.OpTransposition, distance.OpDeletion, distance.OpSubstitution}
	var lines []string
	for _, op := range ops {
		iv := pop[op]
		lines = append(lines, fmt.Sprintf("%-14s mean %.3g  CI [%.3g, %.3g]", op, iv.Mean, iv.Low, iv.High))
	}
	e := &Experiment{ID: "Figure 9", Title: "Relative popularity of typo domains by mistake type",
		Body: strings.Join(lines, "\n") + "\n"}
	del, tr := pop[distance.OpDeletion], pop[distance.OpTransposition]
	add, sub := pop[distance.OpAddition], pop[distance.OpSubstitution]
	e.Checks = append(e.Checks,
		check("deletion/transposition dominate", "significantly more frequent",
			fmt.Sprintf("del %.3g, tr %.3g vs add %.3g, sub %.3g", del.Mean, tr.Mean, add.Mean, sub.Mean),
			del.Mean > sub.Mean && del.Mean > add.Mean && tr.Mean > sub.Mean && tr.Mean > add.Mean),
		check("separation is order-of-magnitude", "~1 decade",
			fmt.Sprintf("del/add = %.1fx", del.Mean/add.Mean), del.Mean > 4*add.Mean),
	)
	return e, nil
}

// Regression regenerates the Section 6.2 projection.
func (s *Suite) Regression() (*Experiment, error) {
	study, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	eco, err := s.Ecosystem()
	if err != nil {
		return nil, err
	}
	proj, err := core.Project(res, study.Universe, eco)
	if err != nil {
		return nil, err
	}
	e := &Experiment{ID: "Regression", Title: "Projection onto third-party typosquatting domains (Section 6.2)",
		Body: core.FormatProjection(proj)}
	e.Checks = append(e.Checks,
		check("fit explains most variance", "R2 = 0.74", fmt.Sprintf("%.2f", proj.Model.R2),
			proj.Model.R2 > 0.4),
		check("LOOCV drops below in-sample R2", "0.63 < 0.74",
			fmt.Sprintf("%.2f < %.2f", proj.LOOCVR2, proj.Model.R2), proj.LOOCVR2 < proj.Model.R2),
		check("per-domain projection matches the paper's scale", "260,514/yr over 1,211 domains (~215/domain)",
			fmt.Sprintf("%.0f/yr over %d domains (%.0f/domain)", proj.Total.Mean, proj.DomainCount,
				proj.Total.Mean/float64(proj.DomainCount)),
			proj.DomainCount > 50 && proj.Total.Mean/float64(proj.DomainCount) > 20 &&
				proj.Total.Mean/float64(proj.DomainCount) < 2000),
		check("mistake-mix correction raises the total", "846,219 > 260,514",
			fmt.Sprintf("%.0f > %.0f", proj.Corrected.Mean, proj.Total.Mean),
			proj.Corrected.Mean > proj.Total.Mean),
		check("intervals are wide", "[22,577, 905,174]",
			fmt.Sprintf("[%.0f, %.0f]", proj.Total.Low, proj.Total.High),
			proj.Total.High > 3*proj.Total.Mean || proj.Total.Low < proj.Total.Mean/3),
	)
	return e, nil
}

// Economics regenerates the cost-per-email computation.
func (s *Suite) Economics() (*Experiment, error) {
	_, res, err := s.Collection()
	if err != nil {
		return nil, err
	}
	all := core.CostPerEmail(76, res.CorrectedSurvivorsYearly)
	top5 := core.TopDomainsCost(res, 5)
	e := &Experiment{ID: "Economics", Title: "Cost per captured email (Section 6.2)",
		Body: fmt.Sprintf("all 76 domains: $%.4f per legitimate email/yr\ntop 5 domains:  $%.4f per email/yr\n", all, top5)}
	e.Checks = append(e.Checks,
		check("under two cents per email", "< $0.02", fmt.Sprintf("$%.4f", all), all < 0.25),
		check("top five under a penny", "< $0.01", fmt.Sprintf("$%.4f", top5), top5 < 0.03),
		check("keeping winners is cheaper", "top-5 < overall", fmt.Sprintf("%.4f < %.4f", top5, all), top5 < all),
	)
	return e, nil
}
