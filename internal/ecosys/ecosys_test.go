package ecosys

import (
	"strings"
	"testing"

	"repro/internal/distance"
	"repro/internal/stats"
	"repro/internal/whois"
)

// smallConfig keeps unit tests quick; shape assertions use the default.
func smallConfig() Config {
	return Config{Targets: 80, UniverseSize: 800, Seed: 42, BulkSquatters: 8, SharedMailHosts: 6}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(smallConfig()), Generate(smallConfig())
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for name, da := range a.Domains {
		db, ok := b.Domains[name]
		if !ok || da.Support != db.Support || da.Registrant.ID != db.Registrant.ID {
			t.Fatalf("domain %s differs across runs", name)
		}
	}
}

func TestCtyposAreValidTypos(t *testing.T) {
	eco := Generate(smallConfig())
	if len(eco.Domains) < 100 {
		t.Fatalf("ecosystem too sparse: %d ctypos", len(eco.Domains))
	}
	for _, d := range eco.Ctypos() {
		if d.Op == distance.OpOther {
			// service-prefix typos: must start with a known prefix
			sld := distance.SLD(d.Name)
			if !strings.HasPrefix(sld, "smtp") && !strings.HasPrefix(sld, "mail") && !strings.HasPrefix(sld, "webmail") {
				t.Fatalf("non-DL1 ctypo %q has unexpected form", d.Name)
			}
			continue
		}
		dl := distance.DamerauLevenshtein(distance.SLD(d.Target), distance.SLD(d.Name))
		if dl != 1 {
			t.Fatalf("ctypo %q of %q at DL=%d", d.Name, d.Target, dl)
		}
	}
}

func TestRegistrantConcentration(t *testing.T) {
	// Figure 8's registrant curve: a tiny fraction of registrants owns a
	// majority of typosquatting domains.
	eco := Generate(DefaultConfig())
	var counts []float64
	for _, r := range eco.Registrants {
		if len(r.Domains) > 0 && r.Kind != KindDefensive {
			counts = append(counts, float64(len(r.Domains)))
		}
	}
	if len(counts) < 20 {
		t.Fatalf("only %d active registrants", len(counts))
	}
	k := stats.TopShareCount(counts, 0.5)
	frac := float64(k) / float64(len(counts))
	if frac > 0.10 {
		t.Errorf("top %.1f%% of registrants own half the domains; paper: ~2.3%%", frac*100)
	}
}

func TestMailServerConcentration(t *testing.T) {
	// Table 6 / Figure 8: a handful of MX hosts serve most mail-capable
	// typo domains.
	eco := Generate(DefaultConfig())
	mxCount := map[string]float64{}
	for _, d := range eco.TyposquattingDomains() {
		for _, mx := range d.MX {
			mxCount[mx]++
		}
	}
	var counts []float64
	for _, c := range mxCount {
		counts = append(counts, c)
	}
	if k := stats.TopShareCount(counts, 0.5); k > 15 {
		t.Errorf("majority needs %d mail servers; paper: ~11 for a third, 51 for majority", k)
	}
}

func TestTable4Shape(t *testing.T) {
	// Table 4's gross shape: STARTTLS-capable domains are the biggest
	// support class; plain-SMTP-only is negligible; a sizable share has
	// no usable records or no info.
	eco := Generate(DefaultConfig())
	counts := map[SMTPSupport]int{}
	for _, d := range eco.Ctypos() {
		counts[d.Support]++
	}
	total := len(eco.Ctypos())
	frac := func(s SMTPSupport) float64 { return float64(counts[s]) / float64(total) }
	if frac(SupportPlain) > 0.02 {
		t.Errorf("plain SMTP fraction = %.3f, paper: ~0.0004", frac(SupportPlain))
	}
	tls := frac(SupportTLSOK) + frac(SupportTLSErrors)
	if tls < 0.25 {
		t.Errorf("TLS-capable fraction = %.2f, paper: ~0.43", tls)
	}
	if frac(SupportTLSOK) <= frac(SupportTLSErrors) {
		t.Errorf("clean TLS (%.2f) should dominate erroring TLS (%.2f)", frac(SupportTLSOK), frac(SupportTLSErrors))
	}
	if frac(SupportNoRecords)+frac(SupportNoInfo)+frac(SupportNoEmail) < 0.2 {
		t.Error("no-mail categories unrealistically small")
	}
}

func TestDefensiveExcludedFromTyposquatting(t *testing.T) {
	eco := Generate(smallConfig())
	for _, d := range eco.TyposquattingDomains() {
		if d.Registrant.Kind == KindDefensive || d.Registrant.Kind == KindLegitBusiness {
			t.Fatalf("%s by %s counted as typosquatting", d.Name, d.Registrant.Kind)
		}
	}
	// And some defensive registrations must exist at all.
	def := 0
	for _, d := range eco.Ctypos() {
		if d.Registrant.Kind == KindDefensive {
			def++
		}
	}
	if def == 0 {
		t.Error("no defensive registrations generated")
	}
}

func TestWhoisClusteringRecoversBulkActors(t *testing.T) {
	eco := Generate(DefaultConfig())
	clusters := whois.Cluster(eco.WhoisRecords(), 4)
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	// The biggest cluster should map to one bulk registrant's portfolio.
	biggest := clusters[0]
	if len(biggest) < 50 {
		t.Errorf("largest cluster = %d domains, want a bulk portfolio", len(biggest))
	}
	owners := map[int]bool{}
	for _, domain := range biggest {
		owners[eco.Domains[domain].Registrant.ID] = true
	}
	if len(owners) != 1 {
		t.Errorf("largest cluster spans %d registrants, want 1", len(owners))
	}
}

func TestNameServerCesspools(t *testing.T) {
	eco := Generate(DefaultConfig())
	ratios := eco.NameServerTypoRatio()
	var all []float64
	worst := 0.0
	for ns, r := range ratios {
		all = append(all, r)
		if strings.Contains(ns, "cesspool") && r > worst {
			worst = r
		}
	}
	if worst < 0.5 {
		t.Errorf("worst cesspool ratio = %.2f, paper: up to 0.89", worst)
	}
	// The typical hoster should be way below the cesspools.
	med := stats.Median(all)
	if med > 0.3 {
		t.Errorf("median NS typo ratio = %.2f, want low", med)
	}
}

func TestServicePrefixTyposPresent(t *testing.T) {
	eco := Generate(DefaultConfig())
	found := 0
	for name := range eco.Domains {
		sld := distance.SLD(name)
		if strings.HasPrefix(sld, "smtp") || strings.HasPrefix(sld, "mail") || strings.HasPrefix(sld, "webmail") {
			found++
		}
	}
	if found == 0 {
		t.Error("no service-prefix typos registered (Section 5.2)")
	}
}

func TestReadersAreRare(t *testing.T) {
	eco := Generate(DefaultConfig())
	accepting, readers := 0, 0
	for _, d := range eco.Ctypos() {
		if d.Behavior == BehaviorAccept {
			accepting++
			if d.ReadsMail {
				readers++
			}
		}
	}
	if accepting == 0 {
		t.Fatal("nobody accepts mail")
	}
	rate := float64(readers) / float64(accepting)
	if rate > 0.02 {
		t.Errorf("reader rate = %.4f, want rare (paper: ~22 of thousands)", rate)
	}
	if readers == 0 {
		t.Error("no readers at all; experiment 7 would be vacuous")
	}
}

func TestRegisteredImplementsRegistry(t *testing.T) {
	eco := Generate(smallConfig())
	cty := eco.Ctypos()
	if len(cty) == 0 {
		t.Fatal("no ctypos")
	}
	if !eco.Registered(cty[0].Name) {
		t.Error("ctypo not registered")
	}
	if !eco.Registered("gmail.com") {
		t.Error("universe domain not registered")
	}
	if eco.Registered("definitely-not-a-domain.test") {
		t.Error("phantom registration")
	}
}

func TestStringers(t *testing.T) {
	for s := SupportNoRecords; s <= SupportTLSOK; s++ {
		if s.String() == "" {
			t.Errorf("SMTPSupport %d has no name", s)
		}
	}
	for b := BehaviorAccept; b <= BehaviorOther; b++ {
		if b.String() == "" {
			t.Errorf("ProbeBehavior %d has no name", b)
		}
	}
	for k := KindBulkSquatter; k <= KindLegitBusiness; k++ {
		if k.String() == "" {
			t.Errorf("RegistrantKind %d has no name", k)
		}
	}
}

func TestServicePrefixCensus(t *testing.T) {
	eco := Generate(DefaultConfig())
	c := CensusServicePrefixes(eco)
	if c.SMTP == 0 || c.Mail == 0 {
		t.Fatalf("census = %+v, want both SMTP and mail registrations", c)
	}
	// Section 5.2: mail typos outnumber smtp typos (366 vs 41): two mail
	// flavors are generated per target against one smtp flavor.
	if c.Mail <= c.SMTP {
		t.Errorf("mail %d <= smtp %d; paper: 366 vs 41", c.Mail, c.SMTP)
	}
	// The suspicion signal: a sizable share is privately registered,
	// inconsistent with defensive trademark registrations.
	if c.SuspiciousShare <= 0.2 {
		t.Errorf("private share = %.2f, want substantial", c.SuspiciousShare)
	}
}
