package ecosys

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/par"
)

// snapshotString renders every field of the ecosystem that any consumer
// reads, in a stable order, with floats printed in full hex precision —
// byte equality of two snapshots means the ecosystems are
// indistinguishable to every experiment.
func snapshotString(e *Ecosystem) string {
	var sb strings.Builder
	for _, d := range e.Ctypos() {
		fmt.Fprintf(&sb, "dom %s target=%s op=%v pos? vis=%x reg=%d mx=%v hasA=%v sup=%d beh=%d reads=%v traffic=%x\n",
			d.Name, d.Target, d.Op, d.Visual, d.Registrant.ID, d.MX, d.HasA, d.Support, d.Behavior, d.ReadsMail, d.Traffic)
	}
	for _, r := range e.Registrants {
		fmt.Fprintf(&sb, "reg %d kind=%v private=%v mail=%s ns=%s org=%q created=%s domains=%v\n",
			r.ID, r.Kind, r.Private, r.MailHost, r.NameServer, r.Record.Organization, r.Record.Created, r.Domains)
	}
	nss := make([]string, 0, len(e.NameServerDomains))
	for ns := range e.NameServerDomains {
		nss = append(nss, ns)
	}
	sort.Strings(nss)
	for _, ns := range nss {
		fmt.Fprintf(&sb, "ns %s %v\n", ns, e.NameServerDomains[ns])
	}
	return sb.String()
}

// TestGenerateSeedEquivalence asserts the determinism-under-parallelism
// contract: for several seeds, the parallel ecosystem is byte-identical
// to the sequential (Workers=1) one at every worker count tried.
func TestGenerateSeedEquivalence(t *testing.T) {
	defer par.SetWorkers(0)
	for _, seed := range []int64{1, 42, 20161105} {
		cfg := smallConfig()
		cfg.Seed = seed

		par.SetWorkers(1)
		ref := snapshotString(Generate(cfg))

		for _, w := range []int{2, 4, 16} {
			par.SetWorkers(w)
			if got := snapshotString(Generate(cfg)); got != ref {
				t.Fatalf("seed %d: workers=%d snapshot differs from sequential run\n(first divergence near %q)",
					seed, w, firstDiff(ref, got))
			}
		}
	}
}

// TestGenerateChunkEquivalence asserts the streaming half of the
// contract: chunked generation is byte-identical to the one-shot
// parallel map at every chunk size and worker count.
func TestGenerateChunkEquivalence(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := smallConfig()
	cfg.Seed = 20161105

	par.SetWorkers(1)
	ref := snapshotString(Generate(cfg))

	for _, chunk := range []int{1, 3, 7, 64, 10000} {
		for _, w := range []int{1, 4} {
			par.SetWorkers(w)
			ccfg := cfg
			ccfg.ChunkTargets = chunk
			if got := snapshotString(Generate(ccfg)); got != ref {
				t.Fatalf("chunk=%d workers=%d snapshot differs from one-shot run\n(first divergence near %q)",
					chunk, w, firstDiff(ref, got))
			}
		}
	}
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > n {
				hi = n
			}
			return a[lo:hi]
		}
	}
	return "length mismatch"
}
