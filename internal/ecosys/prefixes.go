package ecosys

import "strings"

// ServicePrefixCensus is Section 5.2's count of deliberate SMTP- and
// mail-prefix registrations ("We found 41 SMTP and 366 mail
// typosquatting domains registered") together with the suspicion signal
// the paper flags: defensive registrations usually point at the brand
// owner, so a *privately registered* smtpgmail.com is inconsistent with
// trademark protection.
type ServicePrefixCensus struct {
	SMTP    int // smtp<target> registrations
	Mail    int // mail<target> / webmail<target> registrations
	Private int // of those, privately registered
	// SuspiciousShare is Private / (SMTP + Mail).
	SuspiciousShare float64
}

// CensusServicePrefixes walks the registered ctypos for deliberate
// service-prefix names.
func CensusServicePrefixes(eco *Ecosystem) ServicePrefixCensus {
	var c ServicePrefixCensus
	for name, info := range eco.Domains {
		sld := name
		if i := strings.IndexByte(sld, '.'); i >= 0 {
			sld = sld[:i]
		}
		targetSLD := info.Target
		if i := strings.IndexByte(targetSLD, '.'); i >= 0 {
			targetSLD = targetSLD[:i]
		}
		var hit bool
		switch {
		case sld == "smtp"+targetSLD:
			c.SMTP++
			hit = true
		case sld == "mail"+targetSLD, sld == "webmail"+targetSLD:
			c.Mail++
			hit = true
		}
		if hit && info.Registrant.Private {
			c.Private++
		}
	}
	if total := c.SMTP + c.Mail; total > 0 {
		c.SuspiciousShare = float64(c.Private) / float64(total)
	}
	return c
}
