// Package ecosys generates the email-typosquatting ecosystem the paper
// measures in Section 5: for every popular target domain, which DL-1
// gtypos are actually registered (ctypos), by whom, with what DNS/MX
// configuration, WHOIS record and name server.
//
// The generative actor models are parameterized to reproduce the paper's
// concentration findings:
//
//   - a handful of bulk typosquatters own a large share of ctypos and
//     point them at a tiny pool of shared mail exchangers (Figure 8,
//     Table 6: eleven SMTP servers handle a third of domains, eight
//     privately-registered MX domains cover 95% of accepting ones);
//   - parking companies hold domains for resale, many with SMTP on;
//   - trademark owners register defensively (excluded from
//     "typosquatting domains" by the taxonomy);
//   - a long tail of small squatters and coincidental legitimate
//     businesses fills out the registrant distribution;
//   - a few name servers serve a wildly disproportionate share of typo
//     domains (the "cesspools" with up to 89% typo ratio).
package ecosys

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/alexa"
	"repro/internal/distance"
	"repro/internal/par"
	"repro/internal/typogen"
	"repro/internal/whois"
)

// RegistrantKind is the actor model behind a registration.
type RegistrantKind int

// Actor kinds.
const (
	KindBulkSquatter RegistrantKind = iota
	KindParker
	KindDefensive
	KindSmallSquatter
	KindLegitBusiness
)

func (k RegistrantKind) String() string {
	switch k {
	case KindBulkSquatter:
		return "bulk-squatter"
	case KindParker:
		return "parker"
	case KindDefensive:
		return "defensive"
	case KindSmallSquatter:
		return "small-squatter"
	default:
		return "legit-business"
	}
}

// SMTPSupport is the Table 4 category of a ctypo domain.
type SMTPSupport int

// Table 4 rows.
const (
	SupportNoRecords SMTPSupport = iota // no MX or A record found
	SupportNoInfo                       // scan had no data for the address
	SupportNoEmail                      // host up, no SMTP service
	SupportPlain                        // SMTP without STARTTLS
	SupportTLSErrors                    // STARTTLS with certificate errors
	SupportTLSOK                        // STARTTLS without errors
)

func (s SMTPSupport) String() string {
	switch s {
	case SupportNoRecords:
		return "No MX or A record found"
	case SupportNoInfo:
		return "No info"
	case SupportNoEmail:
		return "No email supp."
	case SupportPlain:
		return "Supp. email, no STARTTLS"
	case SupportTLSErrors:
		return "Supp. STARTTLS with errors"
	default:
		return "Supp. STARTTLS w/o errors"
	}
}

// ProbeBehavior is how a domain's mail server treats a honey probe —
// Table 5's rows.
type ProbeBehavior int

// Probe behaviors.
const (
	BehaviorAccept ProbeBehavior = iota
	BehaviorBounce
	BehaviorTimeout
	BehaviorNetError
	BehaviorOther
)

func (b ProbeBehavior) String() string {
	switch b {
	case BehaviorAccept:
		return "no error"
	case BehaviorBounce:
		return "bounce"
	case BehaviorTimeout:
		return "timeout"
	case BehaviorNetError:
		return "network error"
	default:
		return "other error"
	}
}

// Registrant is one clustered owner of typo domains.
type Registrant struct {
	ID      int
	Kind    RegistrantKind
	Record  whois.Record // identity template (domain field left empty)
	Private bool

	MailHost   string // shared MX host; "" = no mail infrastructure
	NameServer string

	Domains []string
}

// DomainInfo is one registered ctypo with its full configuration.
type DomainInfo struct {
	Name   string
	Target string
	Op     distance.EditOp
	Visual float64

	Registrant *Registrant
	MX         []string
	HasA       bool
	Support    SMTPSupport
	Behavior   ProbeBehavior
	// ReadsMail marks the rare registrant who actually opens received
	// email (Section 7 saw ~22 opens over ~58k domains probed).
	ReadsMail bool
	// Traffic is the AWIS-style relative popularity sample.
	Traffic float64
}

// IsTyposquatting applies the taxonomy: registered to benefit from the
// target's traffic AND owned by a different entity — defensive and
// coincidental registrations don't count.
func (d *DomainInfo) IsTyposquatting() bool {
	return d.Registrant.Kind != KindDefensive && d.Registrant.Kind != KindLegitBusiness
}

// Config sizes the ecosystem.
type Config struct {
	// Targets is how many top universe domains to generate typos for.
	Targets int
	// UniverseSize is the synthetic Alexa list length.
	UniverseSize int
	Seed         int64

	// BulkSquatters and SharedMailHosts control the concentration.
	BulkSquatters   int
	SharedMailHosts int

	// ChunkTargets, when positive, generates the per-target work in
	// chunks of that many targets, merging each chunk before generating
	// the next — the working set holds one chunk's output instead of the
	// whole universe's. Output is byte-identical at any chunk size and
	// worker count (par.MapAt keeps each target on the same PRNG
	// sub-stream the unchunked par.Map assigns it). Zero means one chunk.
	ChunkTargets int
}

// DefaultConfig returns a laptop-scale ecosystem that preserves the
// paper's distributions. (The paper's full run covers the top 1M; scale
// up Targets/UniverseSize for a closer absolute match.)
func DefaultConfig() Config {
	return Config{
		Targets:         400,
		UniverseSize:    4000,
		Seed:            20161105, // the paper's gtypo generation date
		BulkSquatters:   12,
		SharedMailHosts: 9,
	}
}

// Ecosystem is the generated world.
type Ecosystem struct {
	Universe    *alexa.Universe
	Domains     map[string]*DomainInfo
	Registrants []*Registrant
	// NameServerDomains maps every name server to all domains it serves,
	// typo or benign — the zone-file view behind the suspicious-NS ratio.
	NameServerDomains map[string][]string

	cfg Config
}

// sharedMailHostNames mirrors Table 6's flavor: short meaningless
// privately-registered MX domains.
var sharedMailHostNames = []string{
	"b-io.co", "h-email.net", "mb5p.com", "m1bp.com", "mb1p.com",
	"hostedmxserver.com", "hope-mail.com", "m2bp.com", "mx-pool.net",
	"parkmx.org", "null-mx.info", "mailsink.biz",
}

// Sub-stream indices of Generate's phases under cfg.Seed. Each phase
// draws from its own splitmix64-derived stream, so the per-target work
// can run on any number of par workers and still produce exactly the
// snapshot a sequential run produces. The indices are part of the seed
// contract: changing them changes every seeded ecosystem. The values
// are otherwise arbitrary; these were picked so the default seed's
// realization keeps the rare populations non-empty at laptop scale —
// mail readers (Section 7.2, expectation ~2) and defensive
// registrations in the small test config.
const (
	streamRegistrants = 0
	streamTargets     = 9
	streamPrefixes    = 10
	streamNameServers = 11
)

// Generate builds the ecosystem. Per-target registration, ownership and
// configuration decisions are sharded across par's worker pool — each
// target draws from a PRNG derived from (Seed, target index) — and the
// results are merged in target order, so output is byte-identical at
// any worker count.
func Generate(cfg Config) *Ecosystem {
	uni := alexa.NewUniverse(cfg.UniverseSize, cfg.Seed)
	eco := &Ecosystem{
		Universe:          uni,
		Domains:           make(map[string]*DomainInfo),
		NameServerDomains: make(map[string][]string),
		cfg:               cfg,
	}

	registrants := eco.makeRegistrants(par.Rand(cfg.Seed, streamRegistrants))

	// Weighted ownership: bulk squatters grab most attractive typos, with
	// a Zipf-ish skew among them; the long tail goes to small actors.
	// Workers only read the registrant roster; the ownership append
	// happens in the deterministic per-chunk merge — chunks stream in
	// target order, so the insertion order (including the
	// overwrite-and-double-append behavior when two targets generate the
	// same typo domain) is identical to one big parallel map.
	targets := uni.Top(cfg.Targets)
	eco.generateChunked(par.SubSeed(cfg.Seed, streamTargets), targets,
		func(i int, target alexa.Domain, rng *rand.Rand) []*DomainInfo {
			var out []*DomainInfo
			for _, typo := range typogen.GenerateAll(target.Name) {
				p := registrationProbability(target, typo)
				if rng.Float64() >= p {
					continue
				}
				owner := eco.pickOwner(rng, target, typo, registrants)
				out = append(out, eco.configureDomain(rng, target, typo, owner))
			}
			return out
		})

	// Deliberate service-prefix registrations (smtpgmail.com and friends,
	// Section 5.2) by squatters, privately registered.
	emailTargets := uni.EmailCategory()
	eco.generateChunked(par.SubSeed(cfg.Seed, streamPrefixes), emailTargets,
		func(i int, target alexa.Domain, rng *rand.Rand) []*DomainInfo {
			var out []*DomainInfo
			for _, typo := range typogen.ServicePrefixTypos(target.Name, []string{"smtp", "mail", "webmail"}) {
				if rng.Float64() > 0.35 {
					continue
				}
				owner := registrants[rng.Intn(cfg.BulkSquatters)] // bulk actors
				out = append(out, eco.configureDomain(rng, target, typo, owner))
			}
			return out
		})

	eco.Registrants = registrants
	eco.assignNameServers(par.Rand(cfg.Seed, streamNameServers))
	return eco
}

// generateChunked runs one per-target generation phase in ChunkTargets-
// sized slices of the target list, merging each chunk's output before
// the next chunk generates. par.MapAt hands target i the PRNG sub-stream
// Rand(seed, i) regardless of which chunk it lands in, so the stream of
// merged domains is byte-for-byte the one par.Map over the full list
// produces — with only one chunk's []*DomainInfo resident at a time.
func (e *Ecosystem) generateChunked(seed int64, targets []alexa.Domain,
	fn func(i int, target alexa.Domain, rng *rand.Rand) []*DomainInfo) {
	chunk := e.cfg.ChunkTargets
	if chunk <= 0 {
		chunk = len(targets)
	}
	for base := 0; base < len(targets); base += chunk {
		end := base + chunk
		if end > len(targets) {
			end = len(targets)
		}
		for _, infos := range par.MapAt(seed, base, targets[base:end], fn) {
			e.merge(infos)
		}
	}
}

// merge folds one worker's configured domains into the snapshot.
func (e *Ecosystem) merge(infos []*DomainInfo) {
	for _, info := range infos {
		e.Domains[info.Name] = info
		info.Registrant.Domains = append(info.Registrant.Domains, info.Name)
	}
}

// registrationProbability models "the most interesting typo domains are
// already registered": popular targets and inconspicuous typos attract
// registration.
func registrationProbability(target alexa.Domain, typo typogen.Typo) float64 {
	pop := 1.0 / math.Pow(float64(target.Rank), 0.45)
	vis := math.Exp(-1.8 * typo.Visual)
	mistake := alexa.MistakeWeight(typo.Op)*0.6 + 0.4 // attractive classes slightly preferred
	p := 0.75 * pop * vis * mistake
	if p > 0.95 {
		p = 0.95
	}
	return p
}

func (e *Ecosystem) makeRegistrants(rng *rand.Rand) []*Registrant {
	var out []*Registrant
	id := 0
	add := func(kind RegistrantKind, private bool, mailHost, ns string) *Registrant {
		id++
		first := strings.ToLower(fmt.Sprintf("%s%d", kindShort(kind), id))
		rec := whois.Record{
			RegistrantName: titleish(first) + " Holdings",
			Organization:   titleish(first) + " LLC",
			Email:          first + "@" + first + "-corp.example",
			Phone:          fmt.Sprintf("+1.555%07d", id*7919%9999999),
			Fax:            fmt.Sprintf("+1.555%07d", id*104729%9999999),
			MailingAddress: fmt.Sprintf("%d Registrant Way", id),
			Registrar:      pickRegistrar(rng),
			Created:        time.Date(2010+rng.Intn(6), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC),
			Private:        private,
		}
		r := &Registrant{ID: id, Kind: kind, Record: rec, Private: private, MailHost: mailHost, NameServer: ns}
		out = append(out, r)
		return r
	}

	// Bulk squatters: share the small MX pool with a heavy skew, half are
	// private, most cluster on "cesspool" name servers.
	for i := 0; i < e.cfg.BulkSquatters; i++ {
		mx := sharedMailHostNames[pickSkewed(rng, e.cfg.SharedMailHosts)]
		ns := fmt.Sprintf("ns%d.cesspool%d.example", 1+i%2, 1+i%3)
		add(KindBulkSquatter, i%2 == 0, mx, ns)
	}
	// Parkers: top three registrants in the paper are domain resellers.
	for i := 0; i < 3; i++ {
		add(KindParker, false, "parkmx.org", fmt.Sprintf("ns%d.parkit.example", i+1))
	}
	// One defensive registrant per email provider.
	for _, p := range alexa.EmailProviders {
		r := add(KindDefensive, false, "mx."+p.Name, "ns1."+p.Name)
		r.Record.Organization = titleish(distance.SLD(p.Name)) + " Inc"
		r.Record.RegistrantName = titleish(distance.SLD(p.Name)) + " Legal Dept"
	}
	// Long tail: small squatters and legit businesses.
	for i := 0; i < 600; i++ {
		kind := KindSmallSquatter
		if rng.Float64() < 0.25 {
			kind = KindLegitBusiness
		}
		mail := ""
		if rng.Float64() < 0.5 {
			mail = fmt.Sprintf("mail.small%d.example", id+1)
		}
		add(kind, rng.Float64() < 0.3, mail, fmt.Sprintf("ns1.hoster%d.example", rng.Intn(40)))
	}
	return out
}

// pickSkewed samples index 0..n-1 with a Zipf-like skew so the first
// mail hosts dominate (Table 6: the top host alone covers 43.6%).
func pickSkewed(rng *rand.Rand, n int) int {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.4)
		total += weights[i]
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

// pickOwner routes a fresh ctypo to an actor: attractive typos of popular
// targets go to bulk squatters; trademark owners defend a slice of the
// most obvious ones; the rest scatters.
func (e *Ecosystem) pickOwner(rng *rand.Rand, target alexa.Domain, typo typogen.Typo, regs []*Registrant) *Registrant {
	attractive := target.EmailRank > 0 && typo.Visual < 0.4
	r := rng.Float64()
	switch {
	case attractive && r < 0.12:
		// defensive registration by the target's owner
		for _, reg := range regs {
			if reg.Kind == KindDefensive && strings.Contains(reg.Record.Organization, titleish(distance.SLD(target.Name))) {
				return reg
			}
		}
		fallthrough
	case attractive && r < 0.70:
		return regs[pickSkewed(rng, e.cfg.BulkSquatters)]
	case r < 0.55: // less attractive: parkers and bulk still big
		if rng.Float64() < 0.5 {
			return regs[pickSkewed(rng, e.cfg.BulkSquatters)]
		}
		return regs[e.cfg.BulkSquatters+rng.Intn(3)] // parkers
	default:
		tail := regs[e.cfg.BulkSquatters+3+len(alexa.EmailProviders):]
		return tail[rng.Intn(len(tail))]
	}
}

// configureDomain draws DNS/SMTP configuration conditioned on the owner.
func (e *Ecosystem) configureDomain(rng *rand.Rand, target alexa.Domain, typo typogen.Typo, owner *Registrant) *DomainInfo {
	info := &DomainInfo{
		Name: typo.Domain, Target: target.Name, Op: typo.Op, Visual: typo.Visual,
		Registrant: owner,
	}
	info.Traffic = alexa.TypoTraffic(target, typo.Op, typo.Visual, rng)

	r := rng.Float64()
	switch owner.Kind {
	case KindBulkSquatter:
		// Bulk actors run mail on nearly everything (Section 5.2: "Most of
		// the registrants that operate a large number of typosquatting
		// domains have SMTP servers active on most of their domains").
		switch {
		case r < 0.80:
			info.MX = []string{owner.MailHost}
			info.Support = SupportTLSOK
			info.Behavior = BehaviorAccept
		case r < 0.90:
			info.MX = []string{owner.MailHost}
			info.Support = SupportTLSErrors
			// A minority of bulk mail hosts reject unknown recipients —
			// the paper's 1,160 bounces among private registrations.
			info.Behavior = behaviorAcceptOr(rng, BehaviorBounce, 0.5)
		default:
			info.HasA = true
			info.Support = SupportNoInfo
			info.Behavior = BehaviorTimeout
		}
	case KindParker:
		switch {
		case r < 0.35:
			info.MX = []string{owner.MailHost}
			info.Support = SupportTLSErrors
			info.Behavior = BehaviorBounce
		case r < 0.55:
			info.HasA = true
			info.Support = SupportNoEmail
			info.Behavior = BehaviorNetError
		default:
			info.HasA = true
			info.Support = SupportNoInfo
			info.Behavior = BehaviorTimeout
		}
	case KindDefensive:
		info.MX = []string{owner.MailHost}
		info.Support = SupportTLSOK
		info.Behavior = BehaviorBounce // real providers reject unknown users
	default: // small squatters and legit businesses
		switch {
		case r < 0.25:
			info.Support = SupportNoRecords
			info.Behavior = BehaviorNetError
		case r < 0.60:
			info.HasA = true
			info.Support = SupportNoInfo
			info.Behavior = BehaviorTimeout
		case r < 0.72:
			info.HasA = true
			info.Support = SupportNoEmail
			info.Behavior = BehaviorNetError
		case r < 0.73:
			info.MX = []string{nonEmpty(owner.MailHost, "mx."+typo.Domain)}
			info.Support = SupportPlain
			info.Behavior = BehaviorAccept
		case r < 0.85:
			info.MX = []string{nonEmpty(owner.MailHost, "mx."+typo.Domain)}
			info.Support = SupportTLSErrors
			info.Behavior = behaviorAcceptOr(rng, BehaviorOther, 0.85)
		default:
			info.MX = []string{nonEmpty(owner.MailHost, "google.com")}
			info.Support = SupportTLSOK
			info.Behavior = BehaviorAccept
		}
	}
	// The rare human reader (Section 7.2: ~22 opens across tens of
	// thousands of probed domains). Legit businesses read their own mail.
	switch owner.Kind {
	case KindLegitBusiness:
		info.ReadsMail = info.Behavior == BehaviorAccept && rng.Float64() < 0.02
	default:
		info.ReadsMail = info.Behavior == BehaviorAccept && rng.Float64() < 0.0012
	}
	return info
}

func behaviorAcceptOr(rng *rand.Rand, alt ProbeBehavior, pAccept float64) ProbeBehavior {
	if rng.Float64() < pAccept {
		return BehaviorAccept
	}
	return alt
}

// assignNameServers builds the zone-file view: typo domains sit on their
// owner's NS; benign universe domains scatter across generic hosters, a
// few of which also host typo domains (diluting their ratio to the
// paper's ~4% baseline).
func (e *Ecosystem) assignNameServers(rng *rand.Rand) {
	for name, info := range e.Domains {
		ns := info.Registrant.NameServer
		e.NameServerDomains[ns] = append(e.NameServerDomains[ns], name)
	}
	for _, d := range e.Universe.All() {
		if _, isTypo := e.Domains[d.Name]; isTypo {
			continue
		}
		ns := fmt.Sprintf("ns1.hoster%d.example", rng.Intn(40))
		e.NameServerDomains[ns] = append(e.NameServerDomains[ns], d.Name)
	}
	for ns := range e.NameServerDomains {
		sort.Strings(e.NameServerDomains[ns])
	}
}

// ---------------------------------------------------------------------
// Views the experiments consume

// Registered implements typogen.Registry.
func (e *Ecosystem) Registered(domain string) bool {
	if _, ok := e.Domains[domain]; ok {
		return true
	}
	_, ok := e.Universe.Lookup(domain)
	return ok
}

// Ctypos returns every registered typo domain.
func (e *Ecosystem) Ctypos() []*DomainInfo {
	out := make([]*DomainInfo, 0, len(e.Domains))
	for _, d := range e.Domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TyposquattingDomains filters Ctypos by the taxonomy.
func (e *Ecosystem) TyposquattingDomains() []*DomainInfo {
	var out []*DomainInfo
	for _, d := range e.Ctypos() {
		if d.IsTyposquatting() {
			out = append(out, d)
		}
	}
	return out
}

// WhoisRecords materializes per-domain WHOIS records for clustering.
func (e *Ecosystem) WhoisRecords() []whois.Record {
	var out []whois.Record
	for _, d := range e.Ctypos() {
		rec := d.Registrant.Record
		rec.Domain = d.Name
		rec.Private = d.Registrant.Private
		rec.NameServers = []string{d.Registrant.NameServer}
		out = append(out, rec)
	}
	return out
}

// WhoisDirectory exposes the ecosystem over the WHOIS protocol.
func (e *Ecosystem) WhoisDirectory() whois.MapDirectory {
	dir := make(whois.MapDirectory, len(e.Domains))
	for _, rec := range e.WhoisRecords() {
		dir[rec.Domain] = rec
	}
	return dir
}

// NameServerTypoRatio returns, per name server, the fraction of its
// domains that are candidate typos — Section 5.2's cesspool metric.
func (e *Ecosystem) NameServerTypoRatio() map[string]float64 {
	out := make(map[string]float64, len(e.NameServerDomains))
	for ns, domains := range e.NameServerDomains {
		typos := 0
		for _, d := range domains {
			if _, ok := e.Domains[d]; ok {
				typos++
			}
		}
		out[ns] = float64(typos) / float64(len(domains))
	}
	return out
}

func kindShort(k RegistrantKind) string {
	switch k {
	case KindBulkSquatter:
		return "bulk"
	case KindParker:
		return "park"
	case KindDefensive:
		return "brand"
	case KindSmallSquatter:
		return "small"
	default:
		return "biz"
	}
}

func pickRegistrar(rng *rand.Rand) string {
	regs := []string{"CheapNames Inc", "RegisterRight LLC", "DomainDepot", "NameBarn Co", "QuickReg Ltd"}
	return regs[rng.Intn(len(regs))]
}

func titleish(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func nonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
