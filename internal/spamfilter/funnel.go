package spamfilter

import (
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/mailmsg"
)

// Email is one collected message with its envelope metadata. ServerDomain
// is the registered typo domain whose VPS accepted the message — known
// from the destination IP, per the paper's one-to-one IP/domain mapping.
type Email struct {
	Msg *mailmsg.Message

	ServerDomain   string // our typo domain that received it
	RcptAddr       string // envelope recipient
	SenderAddr     string // envelope sender
	SMTPTypoDomain bool   // domain was registered to catch SMTP typos
	Received       time.Time
}

// Verdict is the funnel's final classification of an email.
type Verdict int

// Verdicts, in funnel order.
const (
	VerdictSpamHeader   Verdict = iota // Layer 1: erroneous header fields
	VerdictSpamArchive                 // Layer 2: ZIP/RAR attachment
	VerdictSpamScore                   // Layer 2: scorer over threshold
	VerdictSpamCollab                  // Layer 3: collaborative filtering
	VerdictReflection                  // Layer 4: reflection typo (automated)
	VerdictFrequency                   // Layer 5: frequency-filtered
	VerdictReceiverTypo                // survived: true receiver typo
	VerdictSMTPTypo                    // survived: true SMTP typo
)

func (v Verdict) String() string {
	switch v {
	case VerdictSpamHeader:
		return "spam:header"
	case VerdictSpamArchive:
		return "spam:archive"
	case VerdictSpamScore:
		return "spam:score"
	case VerdictSpamCollab:
		return "spam:collaborative"
	case VerdictReflection:
		return "reflection-typo"
	case VerdictFrequency:
		return "frequency-filtered"
	case VerdictReceiverTypo:
		return "receiver-typo"
	case VerdictSMTPTypo:
		return "smtp-typo"
	default:
		return "unknown"
	}
}

// IsSpamVerdict reports whether the verdict is one of the spam layers.
func (v Verdict) IsSpamVerdict() bool {
	return v == VerdictSpamHeader || v == VerdictSpamArchive ||
		v == VerdictSpamScore || v == VerdictSpamCollab
}

// IsTrueTypo reports whether the verdict survived every filter.
func (v Verdict) IsTrueTypo() bool {
	return v == VerdictReceiverTypo || v == VerdictSMTPTypo
}

// Result pairs an email with its verdict.
type Result struct {
	Email   *Email
	Verdict Verdict
	Layer   int      // 1..5, or 0 for survivors
	Rules   []string // scorer rule hits, when Layer == 2
	// FreqOf records, for VerdictFrequency results, what the verdict was
	// before Layer 5 — the paper needs this to bracket SMTP typo counts
	// (415 unfiltered vs 5,970 including the frequency-filtered ones).
	FreqOf Verdict
}

// Config parameterizes the funnel.
type Config struct {
	// OurDomains is the set of registered typo domains.
	OurDomains map[string]bool
	// Scorer is the Layer 2 engine; nil gets NewScorer().
	Scorer *Scorer
	// Frequency thresholds of Layer 5 (Section 4.3): recipient address 20,
	// sender address 10, content 10. Zero values get these defaults.
	RcptThreshold    int
	SenderThreshold  int
	ContentThreshold int
	// Oracle routes every regex decision (Layer 2 content rules and the
	// Layer 4 reflection patterns) through the original stdlib regexps
	// instead of the shared multi-pattern engine — the reference path
	// differential tests compare the engine against. Per-instance so
	// engine and oracle classifiers can run concurrently.
	Oracle bool
}

// Classifier runs the five-layer funnel. Layers 1–4 are streaming;
// Layer 5 requires corpus-wide frequencies and runs in Classify.
type Classifier struct {
	cfg Config

	// Layer 3 state, accumulated across all domains.
	spamSenders map[string]bool
	spamBags    map[string]bool
}

// NewClassifier creates a funnel over the given registered domains.
func NewClassifier(cfg Config) *Classifier {
	if cfg.Scorer == nil {
		if cfg.Oracle {
			cfg.Scorer = NewScorerOracle()
		} else {
			cfg.Scorer = NewScorer()
		}
	}
	if cfg.RcptThreshold == 0 {
		cfg.RcptThreshold = 20
	}
	if cfg.SenderThreshold == 0 {
		cfg.SenderThreshold = 10
	}
	if cfg.ContentThreshold == 0 {
		cfg.ContentThreshold = 10
	}
	return &Classifier{
		cfg:         cfg,
		spamSenders: make(map[string]bool),
		spamBags:    make(map[string]bool),
	}
}

// registeredSuffix reports whether addr's domain is (a subdomain of) one
// of our registered domains.
func (c *Classifier) registeredSuffix(domain string) bool {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	for d := domain; d != ""; {
		if c.cfg.OurDomains[d] {
			return true
		}
		i := strings.IndexByte(d, '.')
		if i < 0 {
			break
		}
		d = d[i+1:]
	}
	return false
}

// layer1 detects erroneous header fields.
func (c *Classifier) layer1(e *Email) bool {
	// The relaying server must be one of our registered domains.
	if !c.registeredSuffix(e.ServerDomain) {
		return true
	}
	// We never send mail: a sender claiming one of our domains is spam.
	if d := mailmsg.AddrDomain(e.SenderAddr); d != "" && c.registeredSuffix(d) {
		return true
	}
	if d := mailmsg.AddrDomain(e.Msg.From()); d != "" && c.registeredSuffix(d) {
		return true
	}
	// Receiver/reflection typo email must be addressed to a typo domain
	// (SMTP typos are addressed to third parties by design).
	if !e.SMTPTypoDomain {
		if !c.registeredSuffix(mailmsg.AddrDomain(e.RcptAddr)) {
			return true
		}
	}
	return false
}

// markSpam feeds Layer 3's collaborative state.
func (c *Classifier) markSpam(e *Email) {
	if s := mailmsg.Addr(e.SenderAddr); s != "" {
		c.spamSenders[s] = true
	}
	if bag, ok := BagOfWords(e.Msg.Text()); ok {
		c.spamBags[BagSignature(bag)] = true
	}
}

// layer3 consults the collaborative state.
func (c *Classifier) layer3(e *Email) bool {
	if c.spamSenders[mailmsg.Addr(e.SenderAddr)] {
		return true
	}
	if bag, ok := BagOfWords(e.Msg.Text()); ok && c.spamBags[BagSignature(bag)] {
		return true
	}
	return false
}

// The Layer 4 oracle regexps, sharing their patterns with ruleEngine.
var (
	reflectionBodyRe = regexp.MustCompile(reflectionBodyPat)
	bounceSenderRe   = regexp.MustCompile(bounceSenderPat)
	systemUserRe     = regexp.MustCompile(systemUserPat)
)

// matchPat answers one pattern Match on the classifier's configured
// path: the shared engine, or the stdlib oracle under cfg.Oracle.
func (c *Classifier) matchPat(pat int, text string) bool {
	if c.cfg.Oracle {
		switch pat {
		case patReflectionBody:
			return reflectionBodyRe.MatchString(text)
		case patBounceSender:
			return bounceSenderRe.MatchString(text)
		case patSystemUser:
			return systemUserRe.MatchString(text)
		}
	}
	return matchOnce(pat, text)
}

// layer4 detects reflection typos — output of automated systems.
func (c *Classifier) layer4(e *Email) bool {
	m := e.Msg
	if m.HasHeader("List-Unsubscribe") || m.HasHeader("List-Id") {
		return true
	}
	for _, h := range [...]string{"Sender", "From", "Reply-To"} {
		if c.matchPat(patBounceSender, m.Header(h)) {
			return true
		}
	}
	// Any two of From, Reply-To, Return-Path with different values.
	var vals [3]string
	n := 0
	for _, h := range [...]string{"From", "Reply-To", "Return-Path"} {
		if v := mailmsg.Addr(m.Header(h)); v != "" {
			vals[n] = v
			n++
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vals[i] != vals[j] {
				return true
			}
		}
	}
	if c.matchPat(patReflectionBody, m.Text()) {
		return true
	}
	if c.matchPat(patSystemUser, mailmsg.Addr(e.SenderAddr)) || c.matchPat(patSystemUser, mailmsg.Addr(m.From())) {
		return true
	}
	return false
}

// ClassifyOne runs layers 1–4 on a single email, updating collaborative
// state. Survivors are provisionally receiver or SMTP typos; Layer 5 may
// still reclassify them in Classify.
func (c *Classifier) ClassifyOne(e *Email) Result {
	if c.layer1(e) {
		c.markSpam(e)
		return Result{Email: e, Verdict: VerdictSpamHeader, Layer: 1}
	}
	if HasForbiddenArchive(e.Msg) {
		c.markSpam(e)
		return Result{Email: e, Verdict: VerdictSpamArchive, Layer: 2}
	}
	if score, hits := c.cfg.Scorer.Score(e.Msg); score >= c.cfg.Scorer.Threshold {
		c.markSpam(e)
		return Result{Email: e, Verdict: VerdictSpamScore, Layer: 2, Rules: hits}
	}
	if c.layer3(e) {
		c.markSpam(e)
		return Result{Email: e, Verdict: VerdictSpamCollab, Layer: 3}
	}
	if c.layer4(e) {
		return Result{Email: e, Verdict: VerdictReflection, Layer: 4}
	}
	if e.SMTPTypoDomain && !c.registeredSuffix(mailmsg.AddrDomain(e.RcptAddr)) {
		return Result{Email: e, Verdict: VerdictSMTPTypo}
	}
	return Result{Email: e, Verdict: VerdictReceiverTypo}
}

// Classify runs the full funnel over a corpus in arrival order, applying
// Layer 5 frequency filtering to the receiver-typo survivors: recipient
// addresses, sender addresses or bodies that appear too often are
// automated artifacts, not unique human mistakes.
func (c *Classifier) Classify(emails []*Email) []Result {
	ordered := append([]*Email(nil), emails...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Received.Before(ordered[j].Received) })

	results := make([]Result, len(ordered))
	for i, e := range ordered {
		results[i] = c.ClassifyOne(e)
	}

	// Layer 5: corpus-wide frequencies over layer 1-4 survivors.
	freq := NewFreqTables()
	for _, r := range results {
		if r.Verdict.IsTrueTypo() {
			freq.Add(r.Email)
		}
	}
	for i := range results {
		c.ApplyLayer5(&results[i], freq)
	}
	return results
}

// contentKey normalizes a body for frequency comparison.
func contentKey(body string) string {
	if bag, ok := BagOfWords(body); ok {
		return BagSignature(bag)
	}
	return strings.Join(strings.Fields(strings.ToLower(body)), " ")
}

// CountByVerdict tallies results per verdict.
func CountByVerdict(results []Result) map[Verdict]int {
	m := make(map[Verdict]int)
	for _, r := range results {
		m[r.Verdict]++
	}
	return m
}
