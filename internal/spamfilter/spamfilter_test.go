package spamfilter

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mailmsg"
)

func TestScorerObviousSpam(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewScorer()
	caught := 0
	for i := 0; i < 200; i++ {
		m := corpus.SpamMessage(rng, 0) // zero evasion
		if s.IsSpam(m) || HasForbiddenArchive(m) {
			caught++
		}
	}
	if caught < 190 {
		t.Errorf("blatant spam caught %d/200, want >= 190", caught)
	}
}

func TestScorerHamPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewScorer()
	flagged := 0
	for i := 0; i < 300; i++ {
		if s.IsSpam(corpus.HamMessage(rng)) {
			flagged++
		}
	}
	if flagged > 6 { // 2% false positive budget
		t.Errorf("ham flagged %d/300", flagged)
	}
}

func TestScorerEvasiveSpamSlips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewScorer()
	caught := 0
	n := 200
	for i := 0; i < n; i++ {
		m := corpus.SpamMessage(rng, 1) // fully evasive
		if s.IsSpam(m) || HasForbiddenArchive(m) {
			caught++
		}
	}
	// The Untroubled-archive phenomenon: most evasive spam slips through.
	if caught > n/4 {
		t.Errorf("evasive spam caught %d/%d, want few", caught, n)
	}
}

// TestTable3Shape verifies the Table 3 pattern: high precision
// everywhere, recall ~0.8 on the mixed corpora, drastically lower recall
// on the all-spam Untroubled-style corpus.
func TestTable3Shape(t *testing.T) {
	s := NewScorer()
	recalls := map[corpus.Dataset]float64{}
	for _, ds := range corpus.AllDatasets() {
		msgs := corpus.Generate(ds)
		tp, fp, fn := 0, 0, 0
		for _, lm := range msgs {
			pred := s.IsSpam(lm.Msg) || HasForbiddenArchive(lm.Msg)
			switch {
			case pred && lm.Spam:
				tp++
			case pred && !lm.Spam:
				fp++
			case !pred && lm.Spam:
				fn++
			}
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		recalls[ds] = recall
		if ds != corpus.DatasetUntroubled && precision < 0.93 {
			t.Errorf("%s precision = %.2f, want >= 0.93", ds, precision)
		}
		if ds != corpus.DatasetUntroubled && (recall < 0.70 || recall > 0.97) {
			t.Errorf("%s recall = %.2f, want ~0.8", ds, recall)
		}
	}
	if recalls[corpus.DatasetUntroubled] > 0.45 {
		t.Errorf("Untroubled recall = %.2f, want low (paper: 0.23)", recalls[corpus.DatasetUntroubled])
	}
	for _, ds := range []corpus.Dataset{corpus.DatasetTREC, corpus.DatasetCSDMC, corpus.DatasetSpamAssassin} {
		if recalls[corpus.DatasetUntroubled] >= recalls[ds] {
			t.Errorf("Untroubled recall %.2f not below %s recall %.2f", recalls[corpus.DatasetUntroubled], ds, recalls[ds])
		}
	}
}

func TestHasForbiddenArchive(t *testing.T) {
	m := mailmsg.NewBuilder("a@b.com", "c@d.com", "s").
		Attach("payload.ZIP", "application/zip", []byte{1}).Build()
	if !HasForbiddenArchive(m) {
		t.Error("zip not detected")
	}
	m2 := mailmsg.NewBuilder("a@b.com", "c@d.com", "s").
		Attach("doc.pdf", "application/pdf", []byte{1}).Build()
	if HasForbiddenArchive(m2) {
		t.Error("pdf misdetected")
	}
}

func TestBagOfWords(t *testing.T) {
	if _, ok := BagOfWords("too few words here"); ok {
		t.Error("short body should not produce a bag")
	}
	long := "alpha bravo charlie delta echo foxtrot golf hotel india juliett kilo lima mike november oscar papa quebec romeo sierra tango uniform victor"
	bag, ok := BagOfWords(long)
	if !ok || len(bag) <= 20 {
		t.Fatalf("bag = %d words, ok=%v", len(bag), ok)
	}
	// Same words, different order and case: same signature.
	bag2, _ := BagOfWords("Victor UNIFORM tango sierra romeo quebec papa oscar november mike lima kilo juliett india hotel golf foxtrot echo delta charlie bravo alpha")
	if BagSignature(bag) != BagSignature(bag2) {
		t.Error("bag signature not order/case invariant")
	}
}

func ourEmail(msg *mailmsg.Message, server, rcpt, sender string, smtpTypo bool, at time.Time) *Email {
	return &Email{Msg: msg, ServerDomain: server, RcptAddr: rcpt, SenderAddr: sender, SMTPTypoDomain: smtpTypo, Received: at}
}

func testClassifier() *Classifier {
	return NewClassifier(Config{OurDomains: map[string]bool{
		"gmial.com": true, "outlo0k.com": true, "smtpverizon.net": true,
	}})
}

var t0 = time.Date(2016, 6, 10, 0, 0, 0, 0, time.UTC)

func TestLayer1HeaderChecks(t *testing.T) {
	ham := func() *mailmsg.Message {
		return mailmsg.NewBuilder("alice@gmail.com", "bob@gmial.com", "hi").
			MessageID("x@gmail.com").Body("see you at the meeting tomorrow ok").Build()
	}
	tests := []struct {
		name string
		e    *Email
		want Verdict
	}{
		{"clean", ourEmail(ham(), "gmial.com", "bob@gmial.com", "alice@gmail.com", false, t0), VerdictReceiverTypo},
		{"wrong relay", ourEmail(ham(), "evil.com", "bob@gmial.com", "alice@gmail.com", false, t0), VerdictSpamHeader},
		{"sender spoofs us", ourEmail(ham(), "gmial.com", "bob@gmial.com", "spoof@gmial.com", false, t0), VerdictSpamHeader},
		{"rcpt not ours", ourEmail(ham(), "gmial.com", "bob@gmail.com", "alice@gmail.com", false, t0), VerdictSpamHeader},
		{"subdomain rcpt ok", ourEmail(ham(), "gmial.com", "bob@smtp.gmial.com", "alice@gmail.com", false, t0), VerdictReceiverTypo},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh classifier per case: Layer 3 state is sticky by design
			// (a spam verdict taints the sender everywhere).
			if got := testClassifier().ClassifyOne(tc.e); got.Verdict != tc.want {
				t.Errorf("verdict = %v, want %v", got.Verdict, tc.want)
			}
		})
	}
}

func TestLayer1FromHeaderSpoof(t *testing.T) {
	c := testClassifier()
	m := mailmsg.NewBuilder("noreply@gmial.com", "bob@gmial.com", "hi").
		MessageID("x@y").Body("body").Build()
	e := ourEmail(m, "gmial.com", "bob@gmial.com", "other@ok.com", false, t0)
	if got := c.ClassifyOne(e); got.Verdict != VerdictSpamHeader {
		t.Errorf("From spoofing our domain = %v, want spam:header", got.Verdict)
	}
}

func TestLayer2Archive(t *testing.T) {
	c := testClassifier()
	m := mailmsg.NewBuilder("a@ok.com", "b@gmial.com", "docs").
		MessageID("x@ok.com").Body("see attached").
		Attach("x.rar", "application/octet-stream", []byte{1}).Build()
	e := ourEmail(m, "gmial.com", "b@gmial.com", "a@ok.com", false, t0)
	got := c.ClassifyOne(e)
	if got.Verdict != VerdictSpamArchive || got.Layer != 2 {
		t.Errorf("result = %+v", got)
	}
}

func TestLayer3CollaborativeSender(t *testing.T) {
	c := testClassifier()
	rng := rand.New(rand.NewSource(4))
	spam := corpus.SpamMessage(rng, 0)
	e1 := ourEmail(spam, "gmial.com", "x@gmial.com", "spammer@offers-zone.ru", false, t0)
	if got := c.ClassifyOne(e1); !got.Verdict.IsSpamVerdict() {
		t.Fatalf("seed spam not caught: %v", got.Verdict)
	}
	// Same sender, now with innocuous content, to a *different* domain.
	clean := mailmsg.NewBuilder("spammer@offers-zone.ru", "y@outlo0k.com", "hello").
		MessageID("z@offers-zone.ru").Body("just a short note").Build()
	e2 := ourEmail(clean, "outlo0k.com", "y@outlo0k.com", "spammer@offers-zone.ru", false, t0.Add(time.Hour))
	got := c.ClassifyOne(e2)
	if got.Verdict != VerdictSpamCollab || got.Layer != 3 {
		t.Errorf("collaborative sender filter missed: %+v", got.Verdict)
	}
}

func TestLayer3CollaborativeBag(t *testing.T) {
	c := testClassifier()
	body := "alpha bravo charlie delta echo foxtrot golf hotel india juliett kilo lima mike november oscar papa quebec romeo sierra tango uniform victor whiskey"
	spam := mailmsg.NewBuilder("s1@spam.ru", "x@gmial.com", "WINNER!!! claim your prize now").
		Body(body + " click here limited time act now 100% free").Build()
	e1 := ourEmail(spam, "gmial.com", "x@gmial.com", "s1@spam.ru", false, t0)
	if got := c.ClassifyOne(e1); !got.Verdict.IsSpamVerdict() {
		t.Fatalf("seed spam not caught: %v", got.Verdict)
	}
	// Different sender, same-ish wordy body (same bag after the spam words).
	same := mailmsg.NewBuilder("s2@elsewhere.com", "y@gmial.com", "hello").
		MessageID("a@elsewhere.com").Body(body + " free 100% now act time limited here click").Build()
	e2 := ourEmail(same, "gmial.com", "y@gmial.com", "s2@elsewhere.com", false, t0.Add(time.Hour))
	got := c.ClassifyOne(e2)
	if got.Verdict != VerdictSpamCollab {
		t.Errorf("collaborative bag filter missed: %v", got.Verdict)
	}
}

func TestLayer4Reflection(t *testing.T) {
	c := testClassifier()
	rng := rand.New(rand.NewSource(5))
	m := corpus.ReflectionMessage(rng, "typoed@gmial.com")
	e := ourEmail(m, "gmial.com", "typoed@gmial.com", mailmsg.Addr(m.From()), false, t0)
	got := c.ClassifyOne(e)
	if got.Verdict != VerdictReflection || got.Layer != 4 {
		t.Errorf("reflection not detected: %+v", got.Verdict)
	}
}

func TestLayer4SystemUser(t *testing.T) {
	c := testClassifier()
	m := mailmsg.NewBuilder("postmaster@somewhere.org", "x@gmial.com", "delivery status").
		MessageID("q@somewhere.org").Body("could not deliver").Build()
	e := ourEmail(m, "gmial.com", "x@gmial.com", "postmaster@somewhere.org", false, t0)
	if got := c.ClassifyOne(e); got.Verdict != VerdictReflection {
		t.Errorf("system user not filtered: %v", got.Verdict)
	}
}

func TestLayer4MismatchedReturnPath(t *testing.T) {
	c := testClassifier()
	m := mailmsg.NewBuilder("real@shop.com", "x@gmial.com", "your order").
		MessageID("q@shop.com").Body("order details inside").
		Header("Return-Path", "other@mailer.shop-blast.com").Build()
	e := ourEmail(m, "gmial.com", "x@gmial.com", "real@shop.com", false, t0)
	if got := c.ClassifyOne(e); got.Verdict != VerdictReflection {
		t.Errorf("mismatched return-path not flagged: %v", got.Verdict)
	}
}

func TestSMTPTypoClassification(t *testing.T) {
	c := testClassifier()
	// A user's outbound mail mis-sent to our SMTP typo server: the
	// recipient is a third party, the server domain is our SMTP typo trap.
	m := mailmsg.NewBuilder("user@verizon.net", "friend@gmail.com", "re: dinner").
		MessageID("p@verizon.net").Body("see you saturday then").Build()
	e := ourEmail(m, "smtpverizon.net", "friend@gmail.com", "user@verizon.net", true, t0)
	got := c.ClassifyOne(e)
	if got.Verdict != VerdictSMTPTypo {
		t.Errorf("SMTP typo = %v", got.Verdict)
	}
	// Receiver typo arriving at an SMTP-typo domain (the paper's odd 700
	// emails/year): recipient at our domain.
	m2 := mailmsg.NewBuilder("user@aol.com", "pal@smtpverizon.net", "hi").
		MessageID("p2@aol.com").Body("short note for you").Build()
	e2 := ourEmail(m2, "smtpverizon.net", "pal@smtpverizon.net", "user@aol.com", true, t0)
	if got := c.ClassifyOne(e2); got.Verdict != VerdictReceiverTypo {
		t.Errorf("receiver typo at SMTP domain = %v", got.Verdict)
	}
}

func TestLayer5FrequencyFiltering(t *testing.T) {
	c := NewClassifier(Config{
		OurDomains:       map[string]bool{"gmial.com": true},
		RcptThreshold:    5,
		SenderThreshold:  3,
		ContentThreshold: 4,
	})
	var emails []*Email
	mk := func(i int, from, rcpt, body string) *Email {
		m := mailmsg.NewBuilder(from, rcpt, fmt.Sprintf("s%d", i)).
			MessageID(fmt.Sprintf("m%d@%s", i, mailmsg.AddrDomain(from))).Body(body).Build()
		return ourEmail(m, "gmial.com", rcpt, from, false, t0.Add(time.Duration(i)*time.Minute))
	}
	// 8 emails to the same recipient (> 5): all frequency filtered.
	for i := 0; i < 8; i++ {
		emails = append(emails, mk(i, fmt.Sprintf("u%d@a.com", i), "hot@gmial.com", fmt.Sprintf("unique body %d with several words", i)))
	}
	// 2 emails to distinct recipients: survive.
	emails = append(emails,
		mk(100, "one@b.com", "r1@gmial.com", "good morning here is the plan"),
		mk(101, "two@c.com", "r2@gmial.com", "totally different message body text"),
	)
	results := c.Classify(emails)
	counts := CountByVerdict(results)
	if counts[VerdictFrequency] != 8 {
		t.Errorf("frequency filtered = %d, want 8 (%v)", counts[VerdictFrequency], counts)
	}
	if counts[VerdictReceiverTypo] != 2 {
		t.Errorf("survivors = %d, want 2 (%v)", counts[VerdictReceiverTypo], counts)
	}
	for _, r := range results {
		if r.Verdict == VerdictFrequency && r.FreqOf != VerdictReceiverTypo {
			t.Errorf("FreqOf = %v, want receiver-typo", r.FreqOf)
		}
	}
}

func TestLayer5SenderThreshold(t *testing.T) {
	c := NewClassifier(Config{
		OurDomains:      map[string]bool{"gmial.com": true},
		SenderThreshold: 3,
	})
	var emails []*Email
	for i := 0; i < 5; i++ {
		m := mailmsg.NewBuilder("chatty@x.com", fmt.Sprintf("r%d@gmial.com", i), "s").
			MessageID(fmt.Sprintf("i%d@x.com", i)).Body(fmt.Sprintf("different body %d each time really", i)).Build()
		emails = append(emails, ourEmail(m, "gmial.com", fmt.Sprintf("r%d@gmial.com", i), "chatty@x.com", false, t0.Add(time.Duration(i)*time.Hour)))
	}
	counts := CountByVerdict(c.Classify(emails))
	if counts[VerdictFrequency] != 5 {
		t.Errorf("sender-frequency filter = %v", counts)
	}
}

func TestFunnelOrderAndMonotonicity(t *testing.T) {
	// Property: the funnel never "un-spams": once layers 1-3 fire, the
	// email is spam; verdict distribution is a partition.
	c := testClassifier()
	rng := rand.New(rand.NewSource(6))
	var emails []*Email
	for i := 0; i < 300; i++ {
		var m *mailmsg.Message
		switch i % 3 {
		case 0:
			m = corpus.SpamMessage(rng, 0.3)
		case 1:
			m = corpus.HamMessage(rng)
		default:
			m = corpus.ReflectionMessage(rng, "x@gmial.com")
		}
		emails = append(emails, ourEmail(m, "gmial.com", "x@gmial.com", mailmsg.Addr(m.From()), false, t0.Add(time.Duration(i)*time.Minute)))
	}
	results := c.Classify(emails)
	if len(results) != len(emails) {
		t.Fatalf("results = %d, want %d", len(results), len(emails))
	}
	total := 0
	for v, n := range CountByVerdict(results) {
		if n < 0 {
			t.Errorf("negative count for %v", v)
		}
		total += n
	}
	if total != len(emails) {
		t.Errorf("verdict counts sum %d != %d", total, len(emails))
	}
}

func TestBayesLearnsSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBayes()
	for i := 0; i < 300; i++ {
		b.Train(corpus.SpamMessage(rng, 0.2), true)
		b.Train(corpus.HamMessage(rng), false)
	}
	if b.Vocabulary() == 0 {
		t.Fatal("no vocabulary learned")
	}
	correct := 0
	n := 200
	for i := 0; i < n/2; i++ {
		if b.IsSpam(corpus.SpamMessage(rng, 0.2)) {
			correct++
		}
		if !b.IsSpam(corpus.HamMessage(rng)) {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("bayes accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestBayesUntrained(t *testing.T) {
	b := NewBayes()
	m := mailmsg.NewBuilder("a@b.com", "c@d.com", "s").Body("anything").Build()
	if b.SpamLogOdds(m) != 0 {
		t.Error("untrained bayes should be neutral")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := VerdictSpamHeader; v <= VerdictSMTPTypo; v++ {
		if v.String() == "unknown" {
			t.Errorf("verdict %d has no name", v)
		}
	}
	if !VerdictSpamScore.IsSpamVerdict() || VerdictReflection.IsSpamVerdict() {
		t.Error("IsSpamVerdict wrong")
	}
	if !VerdictSMTPTypo.IsTrueTypo() || VerdictFrequency.IsTrueTypo() {
		t.Error("IsTrueTypo wrong")
	}
}

// TestScorerRules exercises each Layer 2 rule in isolation.
func TestScorerRules(t *testing.T) {
	s := NewScorer()
	hits := func(m *mailmsg.Message) map[string]bool {
		_, names := s.Score(m)
		set := map[string]bool{}
		for _, n := range names {
			set[n] = true
		}
		return set
	}
	mk := func(subject, body string) *mailmsg.Message {
		m := mailmsg.NewBuilder("a@b.com", "c@d.com", subject).Body(body).Build()
		m.SetHeader("Message-Id", "<x@b.com>")
		return m
	}
	cases := []struct {
		rule string
		msg  *mailmsg.Message
		want bool
	}{
		{"SUBJ_ALL_CAPS", mk("BUY NOW CHEAP MEDS TODAY", "x"), true},
		{"SUBJ_ALL_CAPS", mk("quiet lowercase subject", "x"), false},
		{"SUBJ_EXCLAIM", mk("free!!!", "x"), true},
		{"BODY_SPAM_PHRASES_2", mk("s", "click here for a limited time offer"), true},
		{"BODY_SPAM_PHRASES_2", mk("s", "the quarterly report is attached"), false},
		{"BODY_MONEY", mk("s", "only $9.99 today"), true},
		{"BODY_MANY_LINKS", mk("s", "http://a.example/x http://b.example/y"), true},
		{"SUSPICIOUS_TLD", mk("s", "visit http://win.biz/now"), true},
		{"SHOUTY_BODY", mk("s", "THIS ENTIRE MESSAGE IS WRITTEN IN CAPITAL LETTERS TO GET YOUR FULL ATTENTION RIGHT NOW"), true},
	}
	for _, tc := range cases {
		got := hits(tc.msg)[tc.rule]
		if got != tc.want {
			t.Errorf("rule %s on %q/%q = %v, want %v", tc.rule, tc.msg.Subject(), tc.msg.Body, got, tc.want)
		}
	}

	// REPLYTO_DIFFERS and MISSING_MSGID need header surgery.
	m := mk("s", "x")
	m.SetHeader("Reply-To", "other@elsewhere.example")
	if !hits(m)["REPLYTO_DIFFERS"] {
		t.Error("REPLYTO_DIFFERS missed")
	}
	noID := mailmsg.NewBuilder("a@b.com", "c@d.com", "s").Body("x").Build()
	if !hits(noID)["MISSING_MSGID"] {
		t.Error("MISSING_MSGID missed")
	}
	htmlOnly := mailmsg.NewBuilder("a@b.com", "c@d.com", "s").HTML("<p>only html</p>").Build()
	htmlOnly.SetHeader("Message-Id", "<y@b.com>")
	if !hits(htmlOnly)["HTML_ONLY"] {
		t.Error("HTML_ONLY missed")
	}
}

// TestHTMLOnlySpamFilterable: a spam message whose content lives entirely
// in HTML must still trip the content rules via Text().
func TestHTMLOnlySpamFilterable(t *testing.T) {
	s := NewScorer()
	m := mailmsg.NewBuilder("w@offers-zone.ru", "x@gmial.com", "WINNER!!! claim your prize").
		HTML("<html><body><h1>CLICK HERE</h1><p>limited time offer, 100% free, order now!</p>" +
			"<a href=http://a.ru/1>x</a> <a href=http://b.ru/2>y</a>" +
			"<p>Only $9.99</p></body></html>").Build()
	if !s.IsSpam(m) {
		score, rules := s.Score(m)
		t.Errorf("HTML-only spam scored %.1f (%v)", score, rules)
	}
}
