// Package spamfilter implements the study's five-layer email
// classification funnel (Section 4.3): erroneous-header detection,
// a SpamAssassin-style rule scorer, collaborative filtering across
// domains, reflection-typo detection, and frequency-based filtering.
// Each email marked spam at one layer is not considered further.
package spamfilter

import (
	"regexp"
	"sort"
	"strings"

	"repro/internal/mailmsg"
	"repro/internal/match"
)

// DefaultThreshold is the SpamAssassin default score threshold the paper
// ran with ("local mode with the default thresholds").
const DefaultThreshold = 5.0

// RuleInput is one message prepared for scoring: the derived texts the
// content rules scan, materialized once, plus lazily obtained engine
// scan handles shared by every rule that reads the same text.
type RuleInput struct {
	m    *mailmsg.Message
	text string // m.Text(), cached (HTML-only bodies strip per call)

	textSubj, textScan, textHTML *match.Scan
	phraseHits                   int // spam-phrase count in text+subject; -1 until computed
}

func newRuleInput(m *mailmsg.Message) RuleInput {
	return RuleInput{m: m, text: m.Text(), phraseHits: -1}
}

// Msg returns the message being scored.
func (in *RuleInput) Msg() *mailmsg.Message { return in.m }

// Text is the cached m.Text().
func (in *RuleInput) Text() string { return in.text }

// scanTextSubj scans Text+" "+Subject — the spam-phrase haystack, built
// once and shared by both PHRASES rules (a phrase may span the joint).
func (in *RuleInput) scanTextSubj() *match.Scan {
	if in.textSubj == nil {
		in.textSubj = ruleEngine.Scan(in.text + " " + in.m.Subject())
	}
	return in.textSubj
}

func (in *RuleInput) scanText() *match.Scan {
	if in.textScan == nil {
		in.textScan = ruleEngine.Scan(in.text)
	}
	return in.textScan
}

func (in *RuleInput) scanTextHTML() *match.Scan {
	if in.textHTML == nil {
		in.textHTML = ruleEngine.Scan(in.text + " " + in.m.HTMLBody)
	}
	return in.textHTML
}

// spamPhrases counts spam phrases in text+subject (capped at 3, all the
// rules need), computed once for both PHRASES rules.
func (in *RuleInput) spamPhrases() int {
	if in.phraseHits < 0 {
		in.phraseHits = in.scanTextSubj().Count(patSpamPhrase, 3)
	}
	return in.phraseHits
}

// release returns the scan handles to the engine pool.
func (in *RuleInput) release() {
	for _, s := range [...]*match.Scan{in.textSubj, in.textScan, in.textHTML} {
		if s != nil {
			s.Release()
		}
	}
	in.textSubj, in.textScan, in.textHTML = nil, nil, nil
}

// Rule is one scored heuristic of the Layer 2 scorer.
type Rule struct {
	Name  string
	Score float64
	Match func(in *RuleInput) bool
}

// Scorer is the rule-based Layer 2 engine (the SpamAssassin stand-in).
type Scorer struct {
	Threshold float64
	Rules     []Rule
}

// NewScorer returns a Scorer with the default rule set and threshold.
// Its content rules run on the shared multi-pattern engine.
func NewScorer() *Scorer {
	return &Scorer{Threshold: DefaultThreshold, Rules: defaultRules(false)}
}

// NewScorerOracle returns a Scorer whose content rules run the original
// per-rule stdlib regexps — the reference the engine-backed scorer is
// differentially tested against.
func NewScorerOracle() *Scorer {
	return &Scorer{Threshold: DefaultThreshold, Rules: defaultRules(true)}
}

// Score sums the scores of all matching rules and lists their names.
func (s *Scorer) Score(m *mailmsg.Message) (float64, []string) {
	in := newRuleInput(m)
	var total float64
	var hits []string
	for _, r := range s.Rules {
		if r.Match(&in) {
			total += r.Score
			hits = append(hits, r.Name)
		}
	}
	in.release()
	return total, hits
}

// IsSpam reports whether the message scores at or above the threshold.
// Unlike Score it does not materialize the rule-name list.
func (s *Scorer) IsSpam(m *mailmsg.Message) bool {
	in := newRuleInput(m)
	var total float64
	for _, r := range s.Rules {
		if r.Match(&in) {
			total += r.Score
		}
	}
	in.release()
	return total >= s.Threshold
}

// The content-rule patterns, shared verbatim by the stdlib oracle
// regexps and the multi-pattern engine.
const (
	spamPhrasePat     = `(?i)\b(click here|limited time|act now|no obligation|100% free|risk free|money back|order now|this is not spam|dear friend|claim your prize|winner|lowest prices|online pharmacy|work from home|extra income|no experience|viagra|cheap meds|hot singles|no prescription|make \$\d+)\b`
	moneyPat          = `\$\d+(?:[.,]\d{2})?`
	urlPat            = `https?://[^\s]+`
	badTLDPat         = `(?i)(?:@|https?://)[^\s@/]*\.(?:ru|cn|biz|info)\b`
	reflectionBodyPat = `(?i)\b(unsubscribe|remove yourself|manage your (?:email )?preferences|update your subscription|you are receiving this|opt[ -]?out)\b`
	bounceSenderPat   = `(?i)\b(bounce|unsubscribe|no-?reply|donotreply|mailer-daemon|notifications?)\b`
	systemUserPat     = `(?i)^(postmaster|root|admin|administrator|mailer-daemon|daemon|nobody|www-data)@`
)

// Engine pattern ids, in ruleEngine compile order.
const (
	patSpamPhrase = iota
	patMoney
	patURL
	patBadTLD
	patReflectionBody
	patBounceSender
	patSystemUser
)

// ruleEngine compiles every scorer and funnel pattern into one shared
// multi-pattern engine (internal/match), proven match-for-match
// equivalent to the oracle regexps below.
var ruleEngine = match.MustCompile(
	spamPhrasePat, moneyPat, urlPat, badTLDPat,
	reflectionBodyPat, bounceSenderPat, systemUserPat,
)

var (
	spamPhraseRe = regexp.MustCompile(spamPhrasePat)
	moneyRe      = regexp.MustCompile(moneyPat)
	urlRe        = regexp.MustCompile(urlPat)
	badTLDRe     = regexp.MustCompile(badTLDPat)
)

// matchOnce answers a one-off engine Match on a (usually short) string.
func matchOnce(pat int, text string) bool {
	s := ruleEngine.Scan(text)
	ok := s.Match(pat)
	s.Release()
	return ok
}

func defaultRules(oracle bool) []Rule {
	content := engineContentRules()
	if oracle {
		content = oracleContentRules()
	}
	s := structuralRules()
	rules := make([]Rule, 0, len(s)+len(content))
	rules = append(rules, s[:2]...)   // SUBJ_*
	rules = append(rules, content...) // regex-backed content rules
	return append(rules, s[2:]...)    // header/body-shape rules
}

// engineContentRules are the regex-backed rules on the engine path.
func engineContentRules() []Rule {
	return []Rule{
		{
			Name: "BODY_SPAM_PHRASES_2", Score: 1.6,
			Match: func(in *RuleInput) bool { return in.spamPhrases() >= 2 },
		},
		{
			Name: "BODY_SPAM_PHRASES_3", Score: 1.6,
			Match: func(in *RuleInput) bool { return in.spamPhrases() >= 3 },
		},
		{
			Name: "BODY_MONEY", Score: 0.7,
			Match: func(in *RuleInput) bool { return in.scanText().Match(patMoney) },
		},
		{
			Name: "BODY_MANY_LINKS", Score: 1.0,
			Match: func(in *RuleInput) bool { return in.scanTextHTML().Count(patURL, 3) >= 2 },
		},
		{
			Name: "SUSPICIOUS_TLD", Score: 1.4,
			Match: func(in *RuleInput) bool {
				return matchOnce(patBadTLD, in.m.From()) || in.scanText().Match(patBadTLD) ||
					matchOnce(patBadTLD, in.m.HTMLBody) || matchOnce(patBadTLD, in.m.Header("Reply-To"))
			},
		},
	}
}

// oracleContentRules are the same rules over the stdlib regexps.
func oracleContentRules() []Rule {
	return []Rule{
		{
			Name: "BODY_SPAM_PHRASES_2", Score: 1.6,
			Match: func(in *RuleInput) bool {
				return len(spamPhraseRe.FindAllString(in.text+" "+in.m.Subject(), 3)) >= 2
			},
		},
		{
			Name: "BODY_SPAM_PHRASES_3", Score: 1.6,
			Match: func(in *RuleInput) bool {
				return len(spamPhraseRe.FindAllString(in.text+" "+in.m.Subject(), 3)) >= 3
			},
		},
		{
			Name: "BODY_MONEY", Score: 0.7,
			Match: func(in *RuleInput) bool { return moneyRe.MatchString(in.text) },
		},
		{
			Name: "BODY_MANY_LINKS", Score: 1.0,
			Match: func(in *RuleInput) bool {
				return len(urlRe.FindAllString(in.text+" "+in.m.HTMLBody, 3)) >= 2
			},
		},
		{
			Name: "SUSPICIOUS_TLD", Score: 1.4,
			Match: func(in *RuleInput) bool {
				return badTLDRe.MatchString(in.m.From()) || badTLDRe.MatchString(in.text) ||
					badTLDRe.MatchString(in.m.HTMLBody) || badTLDRe.MatchString(in.m.Header("Reply-To"))
			},
		},
	}
}

// structuralRules are the non-regex rules, identical on both paths.
// Split as [0:2] = the subject rules that open the rule list and [2:] =
// the header/body-shape rules that close it; defaultRules reassembles
// the historical order with the content rules in between.
func structuralRules() []Rule {
	return []Rule{
		{
			Name: "SUBJ_ALL_CAPS", Score: 1.2,
			Match: func(in *RuleInput) bool {
				s := in.m.Subject()
				if len(s) < 8 {
					return false
				}
				letters, caps := 0, 0
				for _, r := range s {
					if r >= 'a' && r <= 'z' {
						letters++
					}
					if r >= 'A' && r <= 'Z' {
						letters++
						caps++
					}
				}
				return letters > 0 && float64(caps)/float64(letters) > 0.6
			},
		},
		{
			Name: "SUBJ_EXCLAIM", Score: 0.8,
			Match: func(in *RuleInput) bool {
				return strings.Contains(in.m.Subject(), "!!") || strings.Count(in.m.Subject(), "!") >= 2
			},
		},
		{
			Name: "REPLYTO_DIFFERS", Score: 0.9,
			Match: func(in *RuleInput) bool {
				rt := mailmsg.Addr(in.m.Header("Reply-To"))
				return rt != "" && rt != mailmsg.Addr(in.m.From())
			},
		},
		{
			Name: "MISSING_MSGID", Score: 0.5,
			Match: func(in *RuleInput) bool { return !in.m.HasHeader("Message-Id") },
		},
		{
			Name: "HTML_ONLY", Score: 0.6,
			Match: func(in *RuleInput) bool {
				return strings.TrimSpace(in.m.Body) == "" && in.m.HTMLBody != ""
			},
		},
		{
			Name: "SHOUTY_BODY", Score: 0.8,
			Match: func(in *RuleInput) bool {
				letters, caps := 0, 0
				for _, r := range in.text {
					if r >= 'a' && r <= 'z' {
						letters++
					}
					if r >= 'A' && r <= 'Z' {
						letters++
						caps++
					}
				}
				return letters > 40 && float64(caps)/float64(letters) > 0.5
			},
		},
	}
}

// HasForbiddenArchive reports whether the message carries a ZIP or RAR
// attachment — which the paper treats as spam unconditionally: "We
// immediately remove all emails with ZIP or RAR attachments [...] every
// single one of them we manually inspected was spam."
func HasForbiddenArchive(m *mailmsg.Message) bool {
	for _, a := range m.Attachments {
		switch a.Ext() {
		case "zip", "rar":
			return true
		}
	}
	return false
}

// BagOfWords returns the message body's normalized unique-word set,
// sorted — Layer 3's content signature. ok is false when the bag has 20
// or fewer words, which the paper considers too weak a signature.
func BagOfWords(body string) (words []string, ok bool) {
	seen := map[string]bool{}
	for _, w := range strings.FieldsFunc(strings.ToLower(body), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	}) {
		if len(w) >= 2 {
			seen[w] = true
		}
	}
	if len(seen) <= 20 {
		return nil, false
	}
	words = make([]string, 0, len(seen))
	for w := range seen {
		words = append(words, w)
	}
	sort.Strings(words)
	return words, true
}

// BagSignature compresses a bag of words to a comparable key.
func BagSignature(words []string) string { return strings.Join(words, "\x00") }
