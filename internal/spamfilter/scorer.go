// Package spamfilter implements the study's five-layer email
// classification funnel (Section 4.3): erroneous-header detection,
// a SpamAssassin-style rule scorer, collaborative filtering across
// domains, reflection-typo detection, and frequency-based filtering.
// Each email marked spam at one layer is not considered further.
package spamfilter

import (
	"regexp"
	"sort"
	"strings"

	"repro/internal/mailmsg"
)

// DefaultThreshold is the SpamAssassin default score threshold the paper
// ran with ("local mode with the default thresholds").
const DefaultThreshold = 5.0

// Rule is one scored heuristic of the Layer 2 scorer.
type Rule struct {
	Name  string
	Score float64
	Match func(m *mailmsg.Message) bool
}

// Scorer is the rule-based Layer 2 engine (the SpamAssassin stand-in).
type Scorer struct {
	Threshold float64
	Rules     []Rule
}

// NewScorer returns a Scorer with the default rule set and threshold.
func NewScorer() *Scorer {
	return &Scorer{Threshold: DefaultThreshold, Rules: defaultRules()}
}

// Score sums the scores of all matching rules and lists their names.
func (s *Scorer) Score(m *mailmsg.Message) (float64, []string) {
	var total float64
	var hits []string
	for _, r := range s.Rules {
		if r.Match(m) {
			total += r.Score
			hits = append(hits, r.Name)
		}
	}
	return total, hits
}

// IsSpam reports whether the message scores at or above the threshold.
func (s *Scorer) IsSpam(m *mailmsg.Message) bool {
	score, _ := s.Score(m)
	return score >= s.Threshold
}

var (
	spamPhraseRe = regexp.MustCompile(`(?i)\b(click here|limited time|act now|no obligation|100% free|risk free|money back|order now|this is not spam|dear friend|claim your prize|winner|lowest prices|online pharmacy|work from home|extra income|no experience|viagra|cheap meds|hot singles|no prescription|make \$\d+)\b`)
	moneyRe      = regexp.MustCompile(`\$\d+(?:[.,]\d{2})?`)
	urlRe        = regexp.MustCompile(`https?://[^\s]+`)
	badTLDRe     = regexp.MustCompile(`(?i)(?:@|https?://)[^\s@/]*\.(?:ru|cn|biz|info)\b`)
)

func defaultRules() []Rule {
	return []Rule{
		{
			Name: "SUBJ_ALL_CAPS", Score: 1.2,
			Match: func(m *mailmsg.Message) bool {
				s := m.Subject()
				if len(s) < 8 {
					return false
				}
				letters, caps := 0, 0
				for _, r := range s {
					if r >= 'a' && r <= 'z' {
						letters++
					}
					if r >= 'A' && r <= 'Z' {
						letters++
						caps++
					}
				}
				return letters > 0 && float64(caps)/float64(letters) > 0.6
			},
		},
		{
			Name: "SUBJ_EXCLAIM", Score: 0.8,
			Match: func(m *mailmsg.Message) bool {
				return strings.Contains(m.Subject(), "!!") || strings.Count(m.Subject(), "!") >= 2
			},
		},
		{
			Name: "BODY_SPAM_PHRASES_2", Score: 1.6,
			Match: func(m *mailmsg.Message) bool {
				return len(spamPhraseRe.FindAllString(m.Text()+" "+m.Subject(), 3)) >= 2
			},
		},
		{
			Name: "BODY_SPAM_PHRASES_3", Score: 1.6,
			Match: func(m *mailmsg.Message) bool {
				return len(spamPhraseRe.FindAllString(m.Text()+" "+m.Subject(), 3)) >= 3
			},
		},
		{
			Name: "BODY_MONEY", Score: 0.7,
			Match: func(m *mailmsg.Message) bool { return moneyRe.MatchString(m.Text()) },
		},
		{
			Name: "BODY_MANY_LINKS", Score: 1.0,
			Match: func(m *mailmsg.Message) bool { return len(urlRe.FindAllString(m.Text()+" "+m.HTMLBody, 3)) >= 2 },
		},
		{
			Name: "SUSPICIOUS_TLD", Score: 1.4,
			Match: func(m *mailmsg.Message) bool {
				return badTLDRe.MatchString(m.From()) || badTLDRe.MatchString(m.Text()) || badTLDRe.MatchString(m.HTMLBody) ||
					badTLDRe.MatchString(m.Header("Reply-To"))
			},
		},
		{
			Name: "REPLYTO_DIFFERS", Score: 0.9,
			Match: func(m *mailmsg.Message) bool {
				rt := mailmsg.Addr(m.Header("Reply-To"))
				return rt != "" && rt != mailmsg.Addr(m.From())
			},
		},
		{
			Name: "MISSING_MSGID", Score: 0.5,
			Match: func(m *mailmsg.Message) bool { return !m.HasHeader("Message-Id") },
		},
		{
			Name: "HTML_ONLY", Score: 0.6,
			Match: func(m *mailmsg.Message) bool {
				return strings.TrimSpace(m.Body) == "" && m.HTMLBody != ""
			},
		},
		{
			Name: "SHOUTY_BODY", Score: 0.8,
			Match: func(m *mailmsg.Message) bool {
				letters, caps := 0, 0
				for _, r := range m.Text() {
					if r >= 'a' && r <= 'z' {
						letters++
					}
					if r >= 'A' && r <= 'Z' {
						letters++
						caps++
					}
				}
				return letters > 40 && float64(caps)/float64(letters) > 0.5
			},
		},
	}
}

// HasForbiddenArchive reports whether the message carries a ZIP or RAR
// attachment — which the paper treats as spam unconditionally: "We
// immediately remove all emails with ZIP or RAR attachments [...] every
// single one of them we manually inspected was spam."
func HasForbiddenArchive(m *mailmsg.Message) bool {
	for _, a := range m.Attachments {
		switch a.Ext() {
		case "zip", "rar":
			return true
		}
	}
	return false
}

// BagOfWords returns the message body's normalized unique-word set,
// sorted — Layer 3's content signature. ok is false when the bag has 20
// or fewer words, which the paper considers too weak a signature.
func BagOfWords(body string) (words []string, ok bool) {
	seen := map[string]bool{}
	for _, w := range strings.FieldsFunc(strings.ToLower(body), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	}) {
		if len(w) >= 2 {
			seen[w] = true
		}
	}
	if len(seen) <= 20 {
		return nil, false
	}
	words = make([]string, 0, len(seen))
	for w := range seen {
		words = append(words, w)
	}
	sort.Strings(words)
	return words, true
}

// BagSignature compresses a bag of words to a comparable key.
func BagSignature(words []string) string { return strings.Join(words, "\x00") }
