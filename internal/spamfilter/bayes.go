package spamfilter

import (
	"math"
	"strings"

	"repro/internal/mailmsg"
)

// Bayes is a multinomial naive-Bayes spam classifier. The paper's
// pipeline uses SpamAssassin rules; Bayes exists as the trainable
// alternative for the ablation benchmarks (rules vs. learned model on the
// Table 3 datasets).
type Bayes struct {
	spamDocs, hamDocs   int
	spamWords, hamWords int
	spamFreq, hamFreq   map[string]int
	vocab               map[string]bool
}

// NewBayes returns an untrained classifier.
func NewBayes() *Bayes {
	return &Bayes{
		spamFreq: make(map[string]int),
		hamFreq:  make(map[string]int),
		vocab:    make(map[string]bool),
	}
}

// tokenize lowercases and splits a message's subject and body.
func tokenize(m *mailmsg.Message) []string {
	text := strings.ToLower(m.Subject() + " " + m.Text())
	return strings.FieldsFunc(text, func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') && r != '$' && r != '!'
	})
}

// Train adds one labeled document.
func (b *Bayes) Train(m *mailmsg.Message, spam bool) {
	toks := tokenize(m)
	if spam {
		b.spamDocs++
		b.spamWords += len(toks)
		for _, t := range toks {
			b.spamFreq[t]++
			b.vocab[t] = true
		}
	} else {
		b.hamDocs++
		b.hamWords += len(toks)
		for _, t := range toks {
			b.hamFreq[t]++
			b.vocab[t] = true
		}
	}
}

// SpamLogOdds returns log P(spam|m) - log P(ham|m) up to a shared
// constant; positive means spam-leaning.
func (b *Bayes) SpamLogOdds(m *mailmsg.Message) float64 {
	if b.spamDocs == 0 || b.hamDocs == 0 {
		return 0
	}
	v := float64(len(b.vocab))
	logOdds := math.Log(float64(b.spamDocs)) - math.Log(float64(b.hamDocs))
	for _, t := range tokenize(m) {
		ps := (float64(b.spamFreq[t]) + 1) / (float64(b.spamWords) + v)
		ph := (float64(b.hamFreq[t]) + 1) / (float64(b.hamWords) + v)
		logOdds += math.Log(ps) - math.Log(ph)
	}
	return logOdds
}

// IsSpam classifies m by the sign of the log odds.
func (b *Bayes) IsSpam(m *mailmsg.Message) bool { return b.SpamLogOdds(m) > 0 }

// Vocabulary returns the number of distinct tokens seen in training.
func (b *Bayes) Vocabulary() int { return len(b.vocab) }
