package spamfilter

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mailmsg"
)

// hamN builds the i-th distinct innocuous message: unique sender, body
// and subject so no frequency bucket aggregates across them.
func hamN(i int) *mailmsg.Message {
	return mailmsg.NewBuilder(fmt.Sprintf("alice%d@gmail.com", i), "bob@gmial.com", "hi").
		MessageID(fmt.Sprintf("m%d@gmail.com", i)).
		Body(fmt.Sprintf("see you at meeting %d tomorrow ok", i)).Build()
}

// funnelFixture is a deterministic corpus with at least one email per
// funnel outcome, in arrival order.
func funnelFixture() []*Email {
	at := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Minute) }
	spam := mailmsg.NewBuilder("w@offers-zone.ru", "x@gmial.com", "WINNER!!! claim your prize").
		MessageID("s1@offers-zone.ru").
		Body("dear friend click here act now 100% free viagra order now, only $9.99 at http://win.biz/now http://win.biz/again").
		Build()
	archive := mailmsg.NewBuilder("a@ok.com", "b@gmial.com", "docs").
		MessageID("a1@ok.com").Body("see attached").
		Attach("x.zip", "application/zip", []byte{1}).Build()
	reflection := mailmsg.NewBuilder("news@list.example.com", "typoed@gmial.com", "your weekly digest").
		MessageID("r1@list.example.com").
		Body("you are receiving this because you subscribed; unsubscribe anytime").Build()
	collab := mailmsg.NewBuilder("w@offers-zone.ru", "y@outlo0k.com", "hello").
		MessageID("c1@offers-zone.ru").Body("just a short note").Build()
	smtp := mailmsg.NewBuilder("carol@gmail.com", "dave@verizon.net", "fyi").
		MessageID("t1@gmail.com").Body("sent through the wrong relay entirely").Build()
	return []*Email{
		ourEmail(hamN(0), "evil.com", "bob@gmial.com", "alice0@gmail.com", false, at(0)),             // layer 1: wrong relay
		ourEmail(archive, "gmial.com", "b@gmial.com", "a@ok.com", false, at(1)),                      // layer 2: archive
		ourEmail(spam, "gmial.com", "x@gmial.com", "w@offers-zone.ru", false, at(2)),                 // layer 2: score
		ourEmail(collab, "outlo0k.com", "y@outlo0k.com", "w@offers-zone.ru", false, at(3)),           // layer 3: tainted sender
		ourEmail(reflection, "gmial.com", "typoed@gmial.com", "news@list.example.com", false, at(4)), // layer 4
		ourEmail(smtp, "smtpverizon.net", "dave@verizon.net", "carol@gmail.com", true, at(5)),        // smtp typo
		ourEmail(hamN(1), "gmial.com", "bob@gmial.com", "alice1@gmail.com", false, at(6)),            // receiver typo
	}
}

// TestFunnelLayerAdmissions is the table-driven per-layer account of the
// fixture: how many emails each layer removed and how many survived.
func TestFunnelLayerAdmissions(t *testing.T) {
	results := testClassifier().Classify(funnelFixture())
	byLayer := map[int]int{}
	for _, r := range results {
		byLayer[r.Layer]++
	}
	want := map[int]int{1: 1, 2: 2, 3: 1, 4: 1, 0: 2}
	if !reflect.DeepEqual(byLayer, want) {
		t.Errorf("per-layer admission counts = %v, want %v", byLayer, want)
	}
	counts := CountByVerdict(results)
	if counts[VerdictSMTPTypo] != 1 || counts[VerdictReceiverTypo] != 1 {
		t.Errorf("survivor counts = %v", counts)
	}
}

// TestGoldenFunnelTrace pins the exact verdict sequence of the fixture
// in arrival order — a golden trace of one complete funnel run.
func TestGoldenFunnelTrace(t *testing.T) {
	results := testClassifier().Classify(funnelFixture())
	var trace []string
	for _, r := range results {
		trace = append(trace, fmt.Sprintf("L%d:%s", r.Layer, r.Verdict))
	}
	want := []string{
		"L1:spam:header",
		"L2:spam:archive",
		"L2:spam:score",
		"L3:spam:collaborative",
		"L4:reflection-typo",
		"L0:smtp-typo",
		"L0:receiver-typo",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("funnel trace:\n got  %v\n want %v", trace, want)
	}
	// The score verdict must carry its rule hits.
	if r := results[2]; len(r.Rules) == 0 {
		t.Errorf("spam:score result carries no rule names: %+v", r)
	}
}

// TestFrequencyThresholdEdges pins Layer 5's strict-inequality edges:
// a frequency equal to the threshold survives, threshold+1 is filtered,
// and the pre-filter verdict is preserved in FreqOf.
func TestFrequencyThresholdEdges(t *testing.T) {
	const th = 3
	cfg := func() Config {
		return Config{
			OurDomains:       map[string]bool{"gmial.com": true},
			RcptThreshold:    th,
			SenderThreshold:  th,
			ContentThreshold: th,
		}
	}
	at := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Minute) }

	// One email per (sender, rcpt, body) axis under test; the other two
	// axes stay unique per email.
	build := func(n int, sameRcpt, sameSender, sameBody bool) []*Email {
		emails := make([]*Email, n)
		for i := 0; i < n; i++ {
			rcpt, sender, body := fmt.Sprintf("r%d@gmial.com", i), fmt.Sprintf("s%d@ok.com", i), fmt.Sprintf("note %d nothing else", i)
			if sameRcpt {
				rcpt = "shared@gmial.com"
			}
			if sameSender {
				sender = "same@ok.com"
			}
			if sameBody {
				body = "identical short body text"
			}
			m := mailmsg.NewBuilder(sender, rcpt, "hi").
				MessageID(fmt.Sprintf("f%d@ok.com", i)).Body(body).Build()
			emails[i] = ourEmail(m, "gmial.com", rcpt, sender, false, at(i))
		}
		return emails
	}
	axes := []struct {
		name                           string
		sameRcpt, sameSender, sameBody bool
	}{
		{"rcpt", true, false, false},
		{"sender", false, true, false},
		{"content", false, false, true},
	}
	for _, ax := range axes {
		t.Run(ax.name, func(t *testing.T) {
			// Exactly at threshold: all survive.
			for _, r := range NewClassifier(cfg()).Classify(build(th, ax.sameRcpt, ax.sameSender, ax.sameBody)) {
				if r.Verdict != VerdictReceiverTypo {
					t.Fatalf("freq == threshold filtered: %+v", r)
				}
			}
			// One past threshold: all filtered, original verdict recorded.
			for _, r := range NewClassifier(cfg()).Classify(build(th+1, ax.sameRcpt, ax.sameSender, ax.sameBody)) {
				if r.Verdict != VerdictFrequency || r.Layer != 5 {
					t.Fatalf("freq > threshold kept: %+v", r)
				}
				if r.FreqOf != VerdictReceiverTypo {
					t.Fatalf("FreqOf = %v, want receiver-typo", r.FreqOf)
				}
			}
		})
	}
}

// TestFunnelEngineOracleVerdicts runs the fixture plus corpus spam and
// ham through an engine-path classifier and an Oracle-path classifier
// and requires identical verdicts, layers and rule hits throughout.
func TestFunnelEngineOracleVerdicts(t *testing.T) {
	mkEmails := func() []*Email {
		emails := funnelFixture()
		i := len(emails)
		for _, ds := range corpus.AllDatasets() {
			for j, lm := range corpus.Generate(ds) {
				if j >= 40 {
					break
				}
				emails = append(emails, ourEmail(lm.Msg, "gmial.com", "u@gmial.com",
					mailmsg.Addr(lm.Msg.From()), false, t0.Add(time.Duration(i)*time.Second)))
				i++
			}
		}
		return emails
	}
	eng := NewClassifier(Config{OurDomains: map[string]bool{"gmial.com": true, "outlo0k.com": true, "smtpverizon.net": true}})
	ora := NewClassifier(Config{OurDomains: map[string]bool{"gmial.com": true, "outlo0k.com": true, "smtpverizon.net": true}, Oracle: true})
	re := eng.Classify(mkEmails())
	ro := ora.Classify(mkEmails())
	if len(re) != len(ro) {
		t.Fatalf("result lengths differ: %d vs %d", len(re), len(ro))
	}
	for i := range re {
		if re[i].Verdict != ro[i].Verdict || re[i].Layer != ro[i].Layer {
			t.Errorf("email %d: engine %v/L%d, oracle %v/L%d",
				i, re[i].Verdict, re[i].Layer, ro[i].Verdict, ro[i].Layer)
		}
		if !reflect.DeepEqual(re[i].Rules, ro[i].Rules) {
			t.Errorf("email %d rule hits differ: engine %v, oracle %v", i, re[i].Rules, ro[i].Rules)
		}
	}
}

// TestScorerEngineOracleScores requires identical scores and rule-hit
// lists from the engine and oracle scorers over every corpus message.
func TestScorerEngineOracleScores(t *testing.T) {
	eng, ora := NewScorer(), NewScorerOracle()
	for _, ds := range corpus.AllDatasets() {
		for j, lm := range corpus.Generate(ds) {
			if j >= 60 {
				break
			}
			se, he := eng.Score(lm.Msg)
			so, ho := ora.Score(lm.Msg)
			if se != so || !reflect.DeepEqual(he, ho) {
				t.Fatalf("%s msg %d: engine %.1f %v, oracle %.1f %v", ds, j, se, he, so, ho)
			}
			if eng.IsSpam(lm.Msg) != ora.IsSpam(lm.Msg) {
				t.Fatalf("%s msg %d: IsSpam differs", ds, j)
			}
		}
	}
}
