package spamfilter

import (
	"hash/fnv"

	"repro/internal/mailmsg"
)

// FreqKey is one Layer 5 frequency key in hashed form. The tables count
// 64-bit FNV-1a digests of the normalized keys instead of the strings
// themselves: a collection-scale corpus has hundreds of thousands of
// unique keys, and content keys (normalized whole bodies) can run to
// kilobytes each, so hashing keeps the corpus-wide tables a small flat
// working set. A collision would merge two keys' counters — with 64-bit
// digests the chance over even a million keys is ~1e-7, far below any
// other source of model noise — and both run modes share this exact
// code, so they stay byte-identical to each other regardless.
type FreqKey uint64

// FreqTables holds Layer 5's corpus-wide frequency state: how often each
// recipient address, sender address and normalized body appeared among
// the layer 1–4 survivors. Classify builds one internally; streaming
// callers (core's chunked two-pass run) build one during their first
// pass over the corpus and replay it against a fresh classifier in the
// second, which is exactly the decomposition Classify performs in one
// sweep — same keys, same thresholds, same verdicts.
type FreqTables struct {
	rcpt    map[FreqKey]int
	sender  map[FreqKey]int
	content map[FreqKey]int
}

// NewFreqTables returns empty Layer 5 frequency state.
func NewFreqTables() *FreqTables {
	return &FreqTables{
		rcpt:    map[FreqKey]int{},
		sender:  map[FreqKey]int{},
		content: map[FreqKey]int{},
	}
}

func hashKey(s string) FreqKey {
	h := fnv.New64a()
	h.Write([]byte(s))
	return FreqKey(h.Sum64())
}

// FreqKeys returns the three Layer 5 frequency keys of an email, hashed.
// The content key normalizes the body the same way the collaborative
// filter does, so repeated automated mail collides regardless of
// whitespace.
func FreqKeys(e *Email) (rcpt, sender, content FreqKey) {
	return hashKey(mailmsg.Addr(e.RcptAddr)),
		hashKey(mailmsg.Addr(e.SenderAddr)),
		hashKey(contentKey(e.Msg.Text()))
}

// Add counts one layer 1–4 survivor into the tables.
func (t *FreqTables) Add(e *Email) {
	rcpt, sender, content := FreqKeys(e)
	t.AddKeys(rcpt, sender, content)
}

// AddKeys counts pre-computed frequency keys — the form streaming
// callers use when the email itself is no longer resident.
func (t *FreqTables) AddKeys(rcpt, sender, content FreqKey) {
	t.rcpt[rcpt]++
	t.sender[sender]++
	t.content[content]++
}

// KeysExceed reports whether any of the keys crosses the classifier's
// Layer 5 threshold under the given tables.
func (c *Classifier) KeysExceed(t *FreqTables, rcpt, sender, content FreqKey) bool {
	return t.rcpt[rcpt] > c.cfg.RcptThreshold ||
		t.sender[sender] > c.cfg.SenderThreshold ||
		t.content[content] > c.cfg.ContentThreshold
}

// ApplyLayer5 reclassifies a layer 1–4 survivor as VerdictFrequency when
// its keys exceed the thresholds under t; non-survivors pass through
// untouched. Classify calls this for every result after building the
// tables, so streaming replay through ApplyLayer5 is definitionally the
// same filter.
func (c *Classifier) ApplyLayer5(r *Result, t *FreqTables) {
	if !r.Verdict.IsTrueTypo() {
		return
	}
	rcpt, sender, content := FreqKeys(r.Email)
	if c.KeysExceed(t, rcpt, sender, content) {
		r.FreqOf = r.Verdict
		r.Verdict = VerdictFrequency
		r.Layer = 5
	}
}
