package sanitize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func kindsOf(text string) map[Kind]bool {
	m := map[Kind]bool{}
	for _, k := range Kinds(Scan(text)) {
		m[k] = true
	}
	return m
}

func TestCreditCardDetection(t *testing.T) {
	tests := []struct {
		text  string
		want  bool
		brand string
	}{
		{"Amex 371385129301004 Exp 06/03", true, "americanexpress"}, // the Figure 2 example
		{"visa 4111111111111111 on file", true, "visa"},
		{"mc 5500005555555559 thanks", true, "mastercard"},
		{"diners 30569309025904 ok", true, "dinersclub"},
		{"jcb 3530111333300000 ok", true, "jcb"},
		{"card 4111 1111 1111 1111 spaced", true, "visa"},
		{"card 4111-1111-1111-1111 dashed", true, "visa"},
		{"fails luhn 4111111111111112", false, ""},
		{"too short 411111111111", false, ""},
		{"order number 1234567890123456", false, ""}, // fails Luhn
	}
	for _, tc := range tests {
		findings := Scan(tc.text)
		var got *Finding
		for i := range findings {
			if findings[i].Kind == KindCreditCard {
				got = &findings[i]
			}
		}
		if (got != nil) != tc.want {
			t.Errorf("Scan(%q) creditcard = %v, want %v", tc.text, got != nil, tc.want)
			continue
		}
		if got != nil && got.Label != tc.brand {
			t.Errorf("Scan(%q) brand = %q, want %q", tc.text, got.Label, tc.brand)
		}
	}
}

func TestSSNDetection(t *testing.T) {
	tests := []struct {
		text string
		want bool
	}{
		{"my ssn is 078-05-1120", true},
		{"000-12-3456 invalid area", false},
		{"666-12-3456 invalid area", false},
		{"900-12-3456 invalid area", false},
		{"123-00-4567 invalid group", false},
		{"123-45-0000 invalid serial", false},
		{"no ssn here 123-456-789", false},
	}
	for _, tc := range tests {
		if got := kindsOf(tc.text)[KindSSN]; got != tc.want {
			t.Errorf("SSN in %q = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestEINDetection(t *testing.T) {
	if !kindsOf("our EIN: 12-3456789 for taxes")[KindEIN] {
		t.Error("EIN not detected")
	}
	if kindsOf("range 12-345")[KindEIN] {
		t.Error("short number misdetected as EIN")
	}
}

func TestPasswordDetection(t *testing.T) {
	tests := []struct {
		text string
		want bool
	}{
		{"password: hunter2", true},
		{"Password = S3cr3t!", true},
		{"your pwd is qwerty123", true},
		{"password reset instructions follow", false},
		{"the password policy requires", false},
		{"passphrase: correct-horse", true},
	}
	for _, tc := range tests {
		if got := kindsOf(tc.text)[KindPassword]; got != tc.want {
			t.Errorf("password in %q = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestVINDetection(t *testing.T) {
	vin, ok := ComputeVINCheckDigit("1HGBH41JXMN109186")
	if !ok {
		t.Fatal("ComputeVINCheckDigit failed")
	}
	if !kindsOf("car vin " + vin + " registered")[KindVIN] {
		t.Errorf("valid VIN %q not detected", vin)
	}
	bad := vin[:8] + "0" + vin[9:]
	if vin[8] == '0' {
		bad = vin[:8] + "1" + vin[9:]
	}
	if kindsOf("car vin " + bad)[KindVIN] {
		t.Error("bad check digit accepted")
	}
	if kindsOf("12345678901234567")[KindVIN] {
		t.Error("all-digit string accepted as VIN")
	}
	if kindsOf("ABCDEFGH")[KindVIN] {
		t.Error("short string accepted as VIN")
	}
}

func TestUsernameDetection(t *testing.T) {
	if !kindsOf("username: jlavorato")[KindUsername] {
		t.Error("username not detected")
	}
	if !kindsOf("your login is enron77")[KindUsername] {
		t.Error("login not detected")
	}
	if kindsOf("the username for that form")[KindUsername] {
		t.Error("prose continuation misdetected")
	}
}

func TestZipDetection(t *testing.T) {
	tests := []struct {
		text string
		want bool
	}{
		{"Pittsburgh, PA 15213", true},
		{"zip: 90210", true},
		{"Zip code 10001 please", true},
		{"order 12345 shipped", false}, // bare five digits: no context
	}
	for _, tc := range tests {
		if got := kindsOf(tc.text)[KindZip]; got != tc.want {
			t.Errorf("zip in %q = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestIDNumberDetection(t *testing.T) {
	if !kindsOf("account number: 889944xy")[KindIDNumber] {
		t.Error("account number not detected")
	}
	if !kindsOf("member no. = A1B2C3")[KindIDNumber] {
		t.Error("member number not detected")
	}
}

func TestEmailDetection(t *testing.T) {
	if !kindsOf("contact alice.smith+work@sub.example.co.uk ok")[KindEmail] {
		t.Error("email not detected")
	}
	if kindsOf("not an email: alice at example dot com")[KindEmail] {
		t.Error("false email")
	}
}

func TestPhoneDetection(t *testing.T) {
	tests := []struct {
		text string
		want bool
	}{
		{"call 412-268-5000", true},
		{"call (412) 268-5000", true},
		{"call +1 412.268.5000", true},
		{"call 4122685000x", false},
	}
	for _, tc := range tests {
		if got := kindsOf(tc.text)[KindPhone]; got != tc.want {
			t.Errorf("phone in %q = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestDateDetection(t *testing.T) {
	for _, text := range []string{"due 06/03/2016", "on 2016-06-04", "met January 5, 2017", "by Mar 3rd, 2017", "short 6/3/16"} {
		if !kindsOf(text)[KindDate] {
			t.Errorf("date not detected in %q", text)
		}
	}
	if kindsOf("version 1.2.3")[KindDate] {
		t.Error("version string misdetected as date")
	}
}

func TestRedactFigure2Example(t *testing.T) {
	// The paper's Figure 2 walkthrough.
	orig := "John Lavorato\nAmex 371385129301004 Exp 06/03\nBook us 3 rooms and make sure that we can have 2 beds in one of the rooms.\nThanks\nJohn"
	s := New("salt-on-removable-media")
	clean, findings := s.Redact(orig)
	if strings.Contains(clean, "371385129301004") {
		t.Fatal("card number survived redaction")
	}
	if !strings.Contains(clean, "*_|R|_*americanexpress*") {
		t.Errorf("redaction token missing: %q", clean)
	}
	// "Book us 3 rooms" -> "Book us 0 rooms"; digits zeroed.
	if !strings.Contains(clean, "Book us 0 rooms") || !strings.Contains(clean, "0 beds") {
		t.Errorf("digits not zeroed: %q", clean)
	}
	hasCard := false
	for _, f := range findings {
		if f.Kind == KindCreditCard {
			hasCard = true
		}
	}
	if !hasCard {
		t.Error("findings missing credit card")
	}
}

func TestRedactDeterministicAndSaltSensitive(t *testing.T) {
	text := "password: hunter2 and again password: hunter2"
	s1 := New("salt-A")
	clean1, _ := s1.Redact(text)
	clean1again, _ := s1.Redact(text)
	if clean1 != clean1again {
		t.Error("redaction not deterministic")
	}
	// Equal secrets produce equal tokens.
	var tokens []string
	parts := strings.Split(clean1, "*_|R|_*")
	for i := 1; i < len(parts); i += 2 { // odd segments are token interiors
		if strings.HasPrefix(parts[i], "password*") {
			tokens = append(tokens, parts[i])
		}
	}
	if len(tokens) != 2 {
		t.Fatalf("expected two password tokens, got %v in %q", tokens, clean1)
	}
	if tokens[0] != tokens[1] {
		t.Error("same secret hashed differently within one salt")
	}
	s2 := New("salt-B")
	clean2, _ := s2.Redact(text)
	if clean1 == clean2 {
		t.Error("different salts produced identical redactions")
	}
}

func TestRedactIdempotent(t *testing.T) {
	s := New("salt")
	text := "ssn 078-05-1120, visa 4111111111111111, call 412-268-5000 on 06/03/2016"
	once, _ := s.Redact(text)
	twice, _ := s.Redact(once)
	if once != twice {
		t.Errorf("redaction not idempotent:\n%q\n%q", once, twice)
	}
}

func TestRedactNoSensitiveContent(t *testing.T) {
	s := New("salt")
	text := "Let's meet for lunch tomorrow. The weather is nice."
	clean, findings := s.Redact(text)
	if clean != text {
		t.Errorf("benign text altered: %q", clean)
	}
	if len(findings) != 0 {
		t.Errorf("phantom findings: %v", findings)
	}
}

func TestZeroDigitsEverywhereOutsideTokens(t *testing.T) {
	s := New("salt")
	clean, _ := s.Redact("meeting room 314 at 5pm")
	if !strings.Contains(clean, "room 000 at 0pm") {
		t.Errorf("stray digits survive: %q", clean)
	}
}

func TestOverlappingFindings(t *testing.T) {
	// A username assignment whose value is an email: both detectors fire,
	// redaction must not mangle the text.
	s := New("salt")
	text := "username: alice@gmail.com done"
	clean, findings := s.Redact(text)
	km := map[Kind]bool{}
	for _, f := range findings {
		km[f.Kind] = true
	}
	if !km[KindUsername] || !km[KindEmail] {
		t.Errorf("kinds = %v", km)
	}
	if strings.Contains(clean, "alice@gmail.com") {
		t.Errorf("email survived: %q", clean)
	}
	if !strings.HasSuffix(clean, "done") {
		t.Errorf("tail mangled: %q", clean)
	}
}

func TestLuhnComplete(t *testing.T) {
	for _, partial := range []string{"411111111111111", "51000000000000", "37138512930100"} {
		full := LuhnComplete(partial)
		if len(full) != len(partial)+1 || !luhnValid(full) {
			t.Errorf("LuhnComplete(%q) = %q invalid", partial, full)
		}
	}
}

func TestCardBrandClassification(t *testing.T) {
	tests := []struct {
		digits, brand string
	}{
		{"371385129301004", "americanexpress"},
		{"4111111111111111", "visa"},
		{"5500005555555559", "mastercard"},
		{"6011000990139424", "discover"},
		{"3530111333300000", "jcb"},
		{"30569309025904", "dinersclub"},
		{"9999999999999995", "card"},
	}
	for _, tc := range tests {
		if got := CardBrand(tc.digits); got != tc.brand {
			t.Errorf("CardBrand(%s) = %q, want %q", tc.digits, got, tc.brand)
		}
	}
}

func TestEvaluatePerfectDetector(t *testing.T) {
	docs := []LabeledDoc{
		{Text: "ssn 078-05-1120", Truth: map[Kind]bool{KindSSN: true}},
		{Text: "nothing here", Truth: map[Kind]bool{}},
		{Text: "card 4111111111111111", Truth: map[Kind]bool{KindCreditCard: true}},
	}
	scores := Evaluate(docs)
	if s := scores[KindSSN]; s.Precision != 1 || s.Sensitivity != 1 {
		t.Errorf("SSN score = %+v", s)
	}
	if s := scores[KindCreditCard]; s.Precision != 1 || s.Sensitivity != 1 {
		t.Errorf("CC score = %+v", s)
	}
}

func TestEvaluateImperfectDetector(t *testing.T) {
	docs := []LabeledDoc{
		// FN: a password the regex cannot see (no keyword).
		{Text: "it is hunter2, don't tell", Truth: map[Kind]bool{KindPassword: true}},
		// TP
		{Text: "password: hunter2", Truth: map[Kind]bool{KindPassword: true}},
		// FP: truth says no password (sarcastic mention).
		{Text: "password: forgotten", Truth: map[Kind]bool{}},
	}
	s := Evaluate(docs)[KindPassword]
	if s.TP != 1 || s.FP != 1 || s.FN != 1 {
		t.Errorf("score = %+v", s)
	}
	if s.Precision != 0.5 || s.Sensitivity != 0.5 {
		t.Errorf("precision/sensitivity = %v/%v", s.Precision, s.Sensitivity)
	}
}

func TestEvaluateSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var docs []LabeledDoc
	for i := 0; i < 200; i++ {
		if i%10 == 0 {
			docs = append(docs, LabeledDoc{Text: "ssn 078-05-1120", Truth: map[Kind]bool{KindSSN: true}})
		} else {
			docs = append(docs, LabeledDoc{Text: "plain body", Truth: map[Kind]bool{}})
		}
	}
	scores := EvaluateSampled(docs, 20, rng)
	if s := scores[KindSSN]; s.Sensitivity != 1 || s.Precision != 1 {
		t.Errorf("sampled SSN score = %+v", s)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(Evaluate([]LabeledDoc{{Text: "x", Truth: map[Kind]bool{}}}))
	if !strings.Contains(out, "creditcard") || !strings.Contains(out, "Prec") {
		t.Errorf("table = %q", out)
	}
}

// Property: Redact never leaves a detectable credit card or SSN behind,
// for random plantings in random text.
func TestRedactRemovesPlantedSecretsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	words := []string{"meeting", "report", "attached", "thanks", "deal", "gas", "london", "trade"}
	s := New("prop-salt")
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		for i := 0; i < 5+rng.Intn(20); i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		num := "4"
		for i := 0; i < 14; i++ {
			num += string(byte('0' + rng.Intn(10)))
		}
		card := LuhnComplete(num)
		sb.WriteString("card " + card)
		clean, _ := s.Redact(sb.String())
		if strings.Contains(clean, card) {
			t.Fatalf("card %s survived: %q", card, clean)
		}
		for _, f := range Scan(clean) {
			if f.Kind == KindCreditCard {
				t.Fatalf("redacted text still scans as card: %q", clean)
			}
		}
	}
}

// Property: redaction is idempotent on random ASCII text.
func TestRedactIdempotentProperty(t *testing.T) {
	s := New("prop")
	f := func(raw string) bool {
		text := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return ' '
			}
			return r
		}, raw)
		once, _ := s.Redact(text)
		twice, _ := s.Redact(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
