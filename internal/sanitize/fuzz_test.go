package sanitize

import (
	"strings"
	"testing"
)

// FuzzRedact asserts the two safety properties on arbitrary input: the
// output never contains a high-value identifier the scanner can still
// find with live digits, and redaction is idempotent.
func FuzzRedact(f *testing.F) {
	f.Add("Amex 371385129301004 Exp 06/03")
	f.Add("ssn 078-05-1120 password: hunter2 call 412-268-5000")
	f.Add("plain text, nothing here")
	f.Add("username: alice@gmail.com Pittsburgh, PA 15213")
	s := New("fuzz-salt")
	f.Fuzz(func(t *testing.T, text string) {
		once, _ := s.Redact(text)
		twice, _ := s.Redact(once)
		if once != twice {
			t.Fatalf("not idempotent:\n%q\n%q", once, twice)
		}
		for _, finding := range Scan(once) {
			switch finding.Kind {
			case KindCreditCard, KindSSN, KindEIN, KindVIN:
				if strings.ContainsAny(finding.Match, "123456789") &&
					!strings.Contains(finding.Match, "*_|R|_*") {
					t.Fatalf("%s %q survived redaction of %q", finding.Kind, finding.Match, text)
				}
			}
		}
	})
}
