package sanitize

import (
	"fmt"
	"math/rand"
	"strings"
)

// LabeledDoc is one document with ground-truth labels: which identifier
// kinds it truly contains. The Enron-corpus stand-in (internal/corpus)
// produces these with labels known by construction, replacing the
// paper's manual labeling.
type LabeledDoc struct {
	Text  string
	Truth map[Kind]bool
}

// Score is one row of Table 2.
type Score struct {
	Kind        Kind
	F1          float64
	Precision   float64
	Sensitivity float64
	TP, FP, FN  int
}

func (s Score) String() string {
	return fmt.Sprintf("%-22s F1=%.2f Prec=%.2f Sens=%.2f (tp=%d fp=%d fn=%d)",
		s.Kind, s.F1, s.Precision, s.Sensitivity, s.TP, s.FP, s.FN)
}

// Evaluate computes document-level precision and sensitivity per kind
// over the full corpus: a true positive is a document where the detector
// fires and the kind is truly present. The paper argues these metrics —
// not accuracy — are the right ones for such an imbalanced dataset.
//
// Scoring needs only per-document per-kind booleans, so it runs on the
// ScanKinds bitmask: one shared engine pass per document, each detector
// stopping at its first validated finding.
func Evaluate(docs []LabeledDoc) map[Kind]Score {
	masks := make([]uint16, len(docs))
	for i, doc := range docs {
		masks[i] = ScanKinds(doc.Text)
	}
	return scoreMasks(docs, masks)
}

func scoreMasks(docs []LabeledDoc, masks []uint16) map[Kind]Score {
	scores := make(map[Kind]Score)
	for _, k := range AllKinds() {
		scores[k] = Score{Kind: k}
	}
	for i, doc := range docs {
		for _, k := range AllKinds() {
			detected := masks[i]&KindBit(k) != 0
			sc := scores[k]
			switch {
			case detected && doc.Truth[k]:
				sc.TP++
			case detected && !doc.Truth[k]:
				sc.FP++
			case !detected && doc.Truth[k]:
				sc.FN++
			}
			scores[k] = sc
		}
	}
	for k, sc := range scores {
		sc.Precision = ratio(sc.TP, sc.TP+sc.FP)
		sc.Sensitivity = ratio(sc.TP, sc.TP+sc.FN)
		if sc.Precision+sc.Sensitivity > 0 {
			sc.F1 = 2 * sc.Precision * sc.Sensitivity / (sc.Precision + sc.Sensitivity)
		}
		scores[k] = sc
	}
	return scores
}

// EvaluateSampled reproduces the paper's Table 2 procedure: for each
// kind, sample up to perKind documents *where the detector fired* (the
// detector-biased sample the paper manually labeled), plus an equal
// number where it did not, then score on that subset. With too few
// firings (the paper had only 13 SSN examples) it uses what exists.
//
// Each document is scanned exactly once; the per-kind subsets are
// scored from the cached ScanKinds masks instead of rescanning.
func EvaluateSampled(docs []LabeledDoc, perKind int, rng *rand.Rand) map[Kind]Score {
	masks := make([]uint16, len(docs))
	for i, doc := range docs {
		masks[i] = ScanKinds(doc.Text)
	}
	detectedBy := make(map[Kind][]int)
	notDetectedBy := make(map[Kind][]int)
	for i := range docs {
		for _, k := range AllKinds() {
			if masks[i]&KindBit(k) != 0 {
				detectedBy[k] = append(detectedBy[k], i)
			} else {
				notDetectedBy[k] = append(notDetectedBy[k], i)
			}
		}
	}
	scores := make(map[Kind]Score)
	for _, k := range AllKinds() {
		sample := sampleIdx(detectedBy[k], perKind, rng)
		sample = append(sample, sampleIdx(notDetectedBy[k], perKind, rng)...)
		sub := make([]LabeledDoc, len(sample))
		subMasks := make([]uint16, len(sample))
		for i, idx := range sample {
			sub[i] = docs[idx]
			subMasks[i] = masks[idx]
		}
		scores[k] = scoreMasks(sub, subMasks)[k]
	}
	return scores
}

func sampleIdx(idxs []int, n int, rng *rand.Rand) []int {
	if len(idxs) <= n {
		return append([]int(nil), idxs...)
	}
	perm := rng.Perm(len(idxs))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = idxs[perm[i]]
	}
	return out
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// FormatTable renders scores as the Table 2 layout.
func FormatTable(scores map[Kind]Score) string {
	var sb strings.Builder
	sb.WriteString("Sensitive info          F1    Prec  Sens\n")
	for _, k := range AllKinds() {
		sc := scores[k]
		fmt.Fprintf(&sb, "%-22s %5.2f %5.2f %5.2f\n", k, sc.F1, sc.Precision, sc.Sensitivity)
	}
	return sb.String()
}
