package sanitize

import (
	"reflect"
	"testing"
)

// engineCases extends gateCases with inputs aimed at the multi-pattern
// engine specifically: literal-prefilter edges, backwalk anchors, fold
// traps inside month and keyword literals, and byte soup the byte-class
// DFA must classify exactly like the oracle.
var engineCases = append([]string{
	"@@@@a@b.cc@d.ee",
	"joe@ex.com jane@ex.org bob@sub.domain.example.travel",
	"\u212Aelvin kelvin KELVIN \u017F\u017F\u017Fn",
	"de\u017F 14, 2016 and dec 14, 2016",
	"pa\u017F\u017Fword is hunter2 and u\u017Fername is jdoe",
	"\x80\xfe\xffpassword is \xc3\x28 bad utf8 4111 1111 1111 1111",
	"a\x00b password\x00is\x00secret123",
	"078-05-1120",
	"x078-05-1120y 12-3456789z",
	"(412) 268 3000 +1 412.268.3000 1-412-268-3000",
	"zip 15213 , PA 15213 ,PA 15213",
	"id = 12345678 account number is AB-9912 policy no. 7788",
	"1HGCM82633A004352 and 1M8GDM9AXKP042788 back to back 1HGCM82633A0043521M8GDM9AXKP042788",
}, gateCases...)

// scanEngineUngated is the engine path with every engGate skipped, to
// prove the gates themselves never drop a finding.
func scanEngineUngated(text string) []Finding {
	var out []Finding
	var gbuf [4]string
	s := engine.Scan(text)
	for i := range detectors {
		d := &detectors[i]
		s.FindAll(i, func(idx []int) bool {
			groups := submatchInto(gbuf[:0], text, idx)
			label, ok := "", true
			if d.validate != nil {
				label, ok = d.validate(groups)
			}
			if ok {
				gs, ge := idx[2*d.group], idx[2*d.group+1]
				out = append(out, Finding{
					Kind: d.kind, Match: text[gs:ge], Start: gs, End: ge, Label: label,
				})
			}
			return true
		})
	}
	s.Release()
	sortFindings(out)
	return out
}

func sameFindings(a, b []Finding) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestEngineOracleEquivalence is the sanitizer-level differential proof:
// on every case the engine path, the engine path without engGates, the
// gated oracle path, and the ungated oracle path return identical
// findings.
func TestEngineOracleEquivalence(t *testing.T) {
	for _, text := range engineCases {
		eng := Scan(text)
		engUngated := scanEngineUngated(text)
		oracle := ScanOracle(text)
		oracleUngated := scanUngated(text)
		if !sameFindings(eng, oracle) {
			t.Errorf("engine differs from oracle on %q:\n engine: %v\n oracle: %v", text, eng, oracle)
		}
		if !sameFindings(eng, engUngated) {
			t.Errorf("engGate drops findings on %q:\n gated:   %v\n ungated: %v", text, eng, engUngated)
		}
		if !sameFindings(oracle, oracleUngated) {
			t.Errorf("oracle gate drops findings on %q", text)
		}
	}
}

// TestDisableEngineHook pins that the disableEngine seam actually
// reroutes Scan/ScanKinds onto the oracle path.
func TestDisableEngineHook(t *testing.T) {
	disableEngine = true
	defer func() { disableEngine = false }()
	for _, text := range engineCases {
		if !sameFindings(Scan(text), ScanOracle(text)) {
			t.Fatalf("disableEngine Scan differs from ScanOracle on %q", text)
		}
	}
}

// TestRedactEquivalence requires byte-identical redaction output
// between the engine and oracle paths — the end-to-end guarantee the
// collection pipeline depends on.
func TestRedactEquivalence(t *testing.T) {
	s := New("differential-salt")
	for _, text := range engineCases {
		cleanEng, fEng := s.Redact(text)
		cleanOra, fOra := s.RedactOracle(text)
		if cleanEng != cleanOra {
			t.Errorf("redacted output differs on %q:\n engine: %q\n oracle: %q", text, cleanEng, cleanOra)
		}
		if !sameFindings(fEng, fOra) {
			t.Errorf("redact findings differ on %q", text)
		}
	}
}

// TestScanKindsEquivalence pins ScanKinds == the kind set of Scan, on
// both the engine and oracle routes.
func TestScanKindsEquivalence(t *testing.T) {
	maskOf := func(fs []Finding) uint16 {
		var m uint16
		for _, f := range fs {
			m |= KindBit(f.Kind)
		}
		return m
	}
	for _, text := range engineCases {
		if got, want := ScanKinds(text), maskOf(Scan(text)); got != want {
			t.Errorf("ScanKinds(%q) = %04x, Scan kinds %04x", text, got, want)
		}
	}
	disableEngine = true
	defer func() { disableEngine = false }()
	for _, text := range engineCases {
		if got, want := ScanKinds(text), maskOf(Scan(text)); got != want {
			t.Errorf("oracle ScanKinds(%q) = %04x, want %04x", text, got, want)
		}
	}
}

// TestKindBit pins the bit layout: one distinct bit per kind, zero for
// unknown kinds.
func TestKindBit(t *testing.T) {
	seen := map[uint16]Kind{}
	for _, k := range AllKinds() {
		b := KindBit(k)
		if b == 0 {
			t.Fatalf("KindBit(%s) = 0", k)
		}
		if prev, dup := seen[b]; dup {
			t.Fatalf("KindBit collision: %s and %s", prev, k)
		}
		seen[b] = k
	}
	if KindBit(Kind("nosuch")) != 0 {
		t.Fatal("KindBit of unknown kind should be 0")
	}
}
