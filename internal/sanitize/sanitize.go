// Package sanitize implements the study's sensitive-information filter
// (Section 4.2.2, Figure 2): regular-expression detection of personal
// identifiers — with the HIPAA identifier list as the baseline — followed
// by redaction. Matches are replaced by salted hashes wrapped in the
// *_|R|_* sentinel visible in the paper's Figure 2, and as an added
// precaution every remaining digit is replaced by a zero before storage.
//
// The same detectors drive two analyses: Table 2 (precision/sensitivity
// of each detector against a labeled corpus) and Figure 6 (which kinds of
// sensitive information each typo domain receives).
package sanitize

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Kind identifies a category of sensitive information (Table 2 rows).
type Kind string

// The Table 2 identifier categories.
const (
	KindCreditCard Kind = "creditcard"
	KindSSN        Kind = "ssn"
	KindEIN        Kind = "ein"
	KindPassword   Kind = "password"
	KindVIN        Kind = "vin"
	KindUsername   Kind = "username"
	KindZip        Kind = "zip"
	KindIDNumber   Kind = "idnumber"
	KindEmail      Kind = "email"
	KindPhone      Kind = "phone"
	KindDate       Kind = "date"
)

// AllKinds lists every detector in Table 2's order.
func AllKinds() []Kind {
	return []Kind{
		KindCreditCard, KindSSN, KindEIN, KindPassword, KindVIN,
		KindUsername, KindZip, KindIDNumber, KindEmail, KindPhone, KindDate,
	}
}

// Finding is one detected identifier.
type Finding struct {
	Kind  Kind
	Match string
	Start int // byte offset in the scanned text
	End   int
	Label string // redaction label; for credit cards this is the brand
}

// detector pairs a regex with semantic validation.
type detector struct {
	kind Kind
	re   *regexp.Regexp
	// validate may reject a syntactic match; nil accepts all. It returns
	// the redaction label.
	validate func(groups []string) (string, bool)
	// group selects which capture group is the sensitive span; 0 = whole.
	group int
}

var detectors = buildDetectors()

func buildDetectors() []detector {
	return []detector{
		{
			kind: KindEmail,
			re:   regexp.MustCompile(`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`),
			validate: func([]string) (string, bool) {
				return "email", true
			},
		},
		{
			kind: KindCreditCard,
			re:   regexp.MustCompile(`\b(?:\d[ \-]?){13,19}\b`),
			validate: func(groups []string) (string, bool) {
				digits := digitsOnly(groups[0])
				if len(digits) < 13 || len(digits) > 19 || !luhnValid(digits) {
					return "", false
				}
				// All zeros passes Luhn trivially — and is exactly what the
				// digit-zeroing redaction step leaves behind. Not a card.
				if strings.Trim(digits, "0") == "" {
					return "", false
				}
				return CardBrand(digits), true
			},
		},
		{
			kind: KindSSN,
			re:   regexp.MustCompile(`\b(\d{3})-(\d{2})-(\d{4})\b`),
			validate: func(groups []string) (string, bool) {
				area := groups[1]
				if area == "000" || area == "666" || area >= "900" {
					return "", false
				}
				if groups[2] == "00" || groups[3] == "0000" {
					return "", false
				}
				return "ssn", true
			},
		},
		{
			kind: KindEIN,
			re:   regexp.MustCompile(`\b(\d{2})-(\d{7})\b`),
			validate: func(groups []string) (string, bool) {
				return "ein", true
			},
		},
		{
			kind:  KindPassword,
			re:    regexp.MustCompile(`(?i)\b(?:password|passwd|pwd|passphrase)\s*(?:is|:|=)?\s*(\S{3,})`),
			group: 1,
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				// Reject prose continuations ("password reset", "password for").
				switch strings.ToLower(strings.Trim(groups[1], ".,;!?")) {
				case "reset", "for", "and", "was", "has", "will", "must", "should",
					"change", "changed", "protected", "required", "policy", "the", "your":
					return "", false
				}
				return "password", true
			},
		},
		{
			kind: KindVIN,
			re:   regexp.MustCompile(`\b[A-HJ-NPR-Za-hj-npr-z0-9]{17}\b`),
			validate: func(groups []string) (string, bool) {
				if !vinValid(strings.ToUpper(groups[0])) {
					return "", false
				}
				return "vin", true
			},
		},
		{
			kind:  KindUsername,
			re:    regexp.MustCompile(`(?i)\b(?:username|user name|login|user id|userid)\s*(?:is|:|=)?\s*(\S{2,})`),
			group: 1,
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				switch strings.ToLower(strings.Trim(groups[1], ".,;!?")) {
				case "and", "or", "for", "is", "was", "will", "the", "your":
					return "", false
				}
				return "username", true
			},
		},
		{
			kind: KindZip,
			// Context-anchored: either "zip[code]: 12345" or a state
			// abbreviation before it ("Pittsburgh, PA 15213[-1234]").
			re:    regexp.MustCompile(`(?i)(?:\bzip(?:\s*code)?\s*(?:is|:|=)?\s*|,\s*[A-Z]{2}\s+)(\d{5}(?:-\d{4})?)\b`),
			group: 1,
			validate: func(groups []string) (string, bool) {
				return "zip", true
			},
		},
		{
			kind:  KindIDNumber,
			re:    regexp.MustCompile(`(?i)\b(?:id|identification|member|account|case|employee|record|mrn|policy)\s*(?:number|num|no\.?|#)?\s*(?:is|:|=)\s*([A-Za-z0-9\-]{4,})`),
			group: 1,
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				return "idnumber", true
			},
		},
		{
			kind: KindPhone,
			re:   regexp.MustCompile(`(?:\+?1[\-. ]?)?(?:\(\d{3}\)\s?|\d{3}[\-. ])\d{3}[\-. ]\d{4}\b`),
			validate: func(groups []string) (string, bool) {
				return "phone", true
			},
		},
		{
			kind: KindDate,
			re: regexp.MustCompile(`(?i)\b(?:\d{1,2}[/\-]\d{1,2}[/\-]\d{2,4}` +
				`|\d{4}-\d{2}-\d{2}` +
				`|(?:jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2}(?:st|nd|rd|th)?,?\s+\d{4})\b`),
			validate: func(groups []string) (string, bool) {
				return "date", true
			},
		},
	}
}

// Scan detects all sensitive identifiers in text. Overlapping findings of
// different kinds are all reported (an email address inside a username
// assignment is both); identical spans of the same kind are deduplicated.
func Scan(text string) []Finding {
	var out []Finding
	seen := make(map[string]bool)
	for _, d := range detectors {
		for _, idx := range d.re.FindAllStringSubmatchIndex(text, -1) {
			groups := submatchStrings(text, idx)
			label, ok := "", true
			if d.validate != nil {
				label, ok = d.validate(groups)
			}
			if !ok {
				continue
			}
			gs, ge := idx[2*d.group], idx[2*d.group+1]
			key := fmt.Sprintf("%s/%d-%d", d.kind, gs, ge)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Finding{
				Kind: d.kind, Match: text[gs:ge], Start: gs, End: ge, Label: label,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Kinds returns the distinct kinds present in findings.
func Kinds(findings []Finding) []Kind {
	set := map[Kind]bool{}
	for _, f := range findings {
		set[f.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	for _, k := range AllKinds() {
		if set[k] {
			out = append(out, k)
		}
	}
	return out
}

// Sanitizer redacts findings using a salted hash, so equal identifiers
// redact to equal tokens (allowing frequency analysis on redacted data)
// without being reversible.
type Sanitizer struct {
	salt []byte
}

// New creates a Sanitizer with the given salt. The paper keeps the salt
// (like the encryption key) off the collection server.
func New(salt string) *Sanitizer { return &Sanitizer{salt: []byte(salt)} }

// redactSentinel brackets every redaction token (visible in the paper's
// Figure 2 as *_|R|_*americanexpress*000...*_|R|_*).
const redactSentinel = "*_|R|_*"

// hashToken returns the redaction token for a match.
func (s *Sanitizer) hashToken(label, match string) string {
	h := sha256.New()
	h.Write(s.salt)
	h.Write([]byte(match))
	return fmt.Sprintf("%s%s*%s%s", redactSentinel, label, hex.EncodeToString(h.Sum(nil))[:16], redactSentinel)
}

// Redact replaces every finding in text with its salted-hash token and
// then zeroes all remaining digits — the two-step scrubbing of
// Section 4.2.2. It returns the cleaned text and the findings.
func (s *Sanitizer) Redact(text string) (string, []Finding) {
	findings := Scan(text)
	// Replace back-to-front so offsets stay valid; skip spans contained in
	// an already-replaced region.
	type span struct {
		start, end int
		token      string
	}
	var spans []span
	covered := func(st, en int) bool {
		for _, sp := range spans {
			if st < sp.end && en > sp.start {
				return true
			}
		}
		return false
	}
	// Longer spans first so e.g. the credit card swallows the date-like
	// fragment inside it.
	byLen := append([]Finding(nil), findings...)
	sort.Slice(byLen, func(i, j int) bool {
		li, lj := byLen[i].End-byLen[i].Start, byLen[j].End-byLen[j].Start
		if li != lj {
			return li > lj
		}
		return byLen[i].Start < byLen[j].Start
	})
	for _, f := range byLen {
		if covered(f.Start, f.End) {
			continue
		}
		spans = append(spans, span{f.Start, f.End, s.hashToken(f.Label, f.Match)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start > spans[j].start })
	out := text
	for _, sp := range spans {
		out = out[:sp.start] + sp.token + out[sp.end:]
	}
	out = zeroDigitsOutsideTokens(out)
	return out, findings
}

// zeroDigitsOutsideTokens zeroes every digit not inside a *_|R|_* token.
func zeroDigitsOutsideTokens(text string) string {
	const sentinel = redactSentinel
	var sb strings.Builder
	sb.Grow(len(text))
	inToken := false
	for i := 0; i < len(text); i++ {
		if strings.HasPrefix(text[i:], sentinel) {
			inToken = !inToken
			sb.WriteString(sentinel)
			i += len(sentinel) - 1
			continue
		}
		c := text[i]
		if !inToken && c >= '0' && c <= '9' {
			sb.WriteByte('0')
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Validators

func digitsOnly(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// luhnValid implements the Luhn checksum used by payment cards.
func luhnValid(digits string) bool {
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		d := int(digits[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

// CardBrand classifies a card number by its issuer prefix — the labels of
// Figure 6's heatmap rows (mastercard, jcb, dinersclub, ...).
func CardBrand(digits string) string {
	switch {
	case len(digits) == 15 && (strings.HasPrefix(digits, "34") || strings.HasPrefix(digits, "37")):
		return "americanexpress"
	case strings.HasPrefix(digits, "4"):
		return "visa"
	case len(digits) >= 2 && digits[0] == '5' && digits[1] >= '1' && digits[1] <= '5':
		return "mastercard"
	case strings.HasPrefix(digits, "6011") || strings.HasPrefix(digits, "65"):
		return "discover"
	case strings.HasPrefix(digits, "35"):
		return "jcb"
	case strings.HasPrefix(digits, "300") || strings.HasPrefix(digits, "301") ||
		strings.HasPrefix(digits, "302") || strings.HasPrefix(digits, "303") ||
		strings.HasPrefix(digits, "304") || strings.HasPrefix(digits, "305") ||
		strings.HasPrefix(digits, "36") || strings.HasPrefix(digits, "38"):
		return "dinersclub"
	default:
		return "card"
	}
}

// vinTranslit maps VIN characters to their check-digit values.
var vinTranslit = map[byte]int{
	'A': 1, 'B': 2, 'C': 3, 'D': 4, 'E': 5, 'F': 6, 'G': 7, 'H': 8,
	'J': 1, 'K': 2, 'L': 3, 'M': 4, 'N': 5, 'P': 7, 'R': 9,
	'S': 2, 'T': 3, 'U': 4, 'V': 5, 'W': 6, 'X': 7, 'Y': 8, 'Z': 9,
	'0': 0, '1': 1, '2': 2, '3': 3, '4': 4, '5': 5, '6': 6, '7': 7, '8': 8, '9': 9,
}

var vinWeights = []int{8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2}

// vinValid checks a 17-character VIN's check digit (position 9).
func vinValid(vin string) bool {
	if len(vin) != 17 {
		return false
	}
	// All-digit strings are far more likely to be something else.
	if digitsOnly(vin) == vin {
		return false
	}
	// Long runs of one character never appear in real VINs but do appear
	// in zero-redacted text, where they would re-trigger detection.
	run, prev := 1, byte(0)
	for i := 0; i < len(vin); i++ {
		if vin[i] == prev {
			run++
			if run >= 7 {
				return false
			}
		} else {
			run, prev = 1, vin[i]
		}
	}
	sum := 0
	for i := 0; i < 17; i++ {
		v, ok := vinTranslit[vin[i]]
		if !ok {
			return false
		}
		sum += v * vinWeights[i]
	}
	rem := sum % 11
	check := byte('0' + rem)
	if rem == 10 {
		check = 'X'
	}
	return vin[8] == check
}

// ComputeVINCheckDigit fills in the check digit for a 17-char VIN
// skeleton, used by the corpus generator to plant valid VINs.
func ComputeVINCheckDigit(vin string) (string, bool) {
	if len(vin) != 17 {
		return "", false
	}
	up := strings.ToUpper(vin)
	sum := 0
	for i := 0; i < 17; i++ {
		if i == 8 {
			continue
		}
		v, ok := vinTranslit[up[i]]
		if !ok {
			return "", false
		}
		sum += v * vinWeights[i]
	}
	rem := sum % 11
	check := byte('0' + rem)
	if rem == 10 {
		check = 'X'
	}
	return up[:8] + string(check) + up[9:], true
}

// LuhnComplete appends the Luhn check digit to a partial card number,
// for the corpus generator.
func LuhnComplete(partial string) string {
	for d := byte('0'); d <= '9'; d++ {
		cand := partial + string(d)
		if luhnValid(cand) {
			return cand
		}
	}
	return partial + "0" // unreachable: some digit always satisfies Luhn
}

func submatchStrings(text string, idx []int) []string {
	out := make([]string, len(idx)/2)
	for i := 0; i < len(idx); i += 2 {
		if idx[i] >= 0 {
			out[i/2] = text[idx[i]:idx[i+1]]
		}
	}
	return out
}
