// Package sanitize implements the study's sensitive-information filter
// (Section 4.2.2, Figure 2): regular-expression detection of personal
// identifiers — with the HIPAA identifier list as the baseline — followed
// by redaction. Matches are replaced by salted hashes wrapped in the
// *_|R|_* sentinel visible in the paper's Figure 2, and as an added
// precaution every remaining digit is replaced by a zero before storage.
//
// The same detectors drive two analyses: Table 2 (precision/sensitivity
// of each detector against a labeled corpus) and Figure 6 (which kinds of
// sensitive information each typo domain receives).
package sanitize

import (
	"crypto/sha256"
	"encoding/hex"
	"regexp"
	"sort"
	"strings"

	"repro/internal/match"
)

// Kind identifies a category of sensitive information (Table 2 rows).
type Kind string

// The Table 2 identifier categories.
const (
	KindCreditCard Kind = "creditcard"
	KindSSN        Kind = "ssn"
	KindEIN        Kind = "ein"
	KindPassword   Kind = "password"
	KindVIN        Kind = "vin"
	KindUsername   Kind = "username"
	KindZip        Kind = "zip"
	KindIDNumber   Kind = "idnumber"
	KindEmail      Kind = "email"
	KindPhone      Kind = "phone"
	KindDate       Kind = "date"
)

// AllKinds lists every detector in Table 2's order.
func AllKinds() []Kind {
	return []Kind{
		KindCreditCard, KindSSN, KindEIN, KindPassword, KindVIN,
		KindUsername, KindZip, KindIDNumber, KindEmail, KindPhone, KindDate,
	}
}

// Finding is one detected identifier.
type Finding struct {
	Kind  Kind
	Match string
	Start int // byte offset in the scanned text
	End   int
	Label string // redaction label; for credit cards this is the brand
}

// detector pairs a regex with semantic validation.
type detector struct {
	kind    Kind
	pattern string
	re      *regexp.Regexp
	// validate may reject a syntactic match; nil accepts all. It returns
	// the redaction label.
	validate func(groups []string) (string, bool)
	// group selects which capture group is the sensitive span; 0 = whole.
	group int
	// gate is a cheap necessary condition for the regex to match: it may
	// only return false when the regex provably cannot match the text.
	// nil means "always run the regex".
	gate func(st *textStats) bool
	// trigger, when non-nil, is a superset of the bytes a match can start
	// with; cand (optional) is a further necessary condition on a match
	// starting at text[c]. Positions failing them cannot start a match,
	// so the regex runs only at surviving candidates, via an anchored
	// variant of the pattern.
	trigger *[256]bool
	cand    func(text string, c int) bool
	// anchored is `(?s)\A.` + pattern, run on text[c-1:] so the leading
	// dot consumes exactly the one context byte and \b at the match start
	// sees the true neighbor; anchored0 is `\A` + pattern for c == 0.
	anchored  *regexp.Regexp
	anchored0 *regexp.Regexp
	// engGate is the engine-path gate: the structural (digit/byte-count)
	// part of gate, without the keyword checks the engine's literal
	// prefilter already subsumes. Like gate it may only return false
	// when the pattern provably cannot match. nil means "always query".
	engGate func(st *textStats) bool
}

// anchor compiles the candidate-position variants for a pattern.
func anchor(pattern string) (ctx, bos *regexp.Regexp) {
	return regexp.MustCompile(`(?s)\A.` + pattern), regexp.MustCompile(`\A` + pattern)
}

// findAll returns the detector's submatch indices over text, equal to
// re.FindAllStringSubmatchIndex(text, -1). With a trigger and gating
// enabled, the whole-text scan is replaced by anchored probes at
// candidate positions only. That is exact because: every match start
// satisfies trigger/cand (they are necessary conditions), so probing
// candidates left to right finds the same leftmost matches; the probe
// pattern differs only by a one-rune context prefix, and since a
// candidate byte is ASCII the preceding byte is consumed as exactly one
// rune whose word-ness equals the original neighbor's (non-ASCII runes
// and RuneError are both non-word), preserving \b; and resuming after
// each match end mirrors FindAll's non-overlap rule.
func (d *detector) findAll(text string, gated bool) [][]int {
	if !gated || d.trigger == nil {
		return d.re.FindAllStringSubmatchIndex(text, -1)
	}
	var out [][]int
	for c := 0; c < len(text); c++ {
		if !d.trigger[text[c]] {
			continue
		}
		if d.cand != nil && !d.cand(text, c) {
			continue
		}
		var idx []int
		lo := 0
		if c == 0 {
			idx = d.anchored0.FindStringSubmatchIndex(text)
		} else {
			lo = c - 1
			idx = d.anchored.FindStringSubmatchIndex(text[lo:])
		}
		if idx == nil {
			continue
		}
		for k, v := range idx {
			if v >= 0 {
				idx[k] = v + lo
			}
		}
		idx[0] = c // strip the context prefix from the whole-match span
		out = append(out, idx)
		c = idx[1] - 1 // resume at the match end (the loop increments)
	}
	return out
}

// Byte helpers for candidate checks.
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isWordByte mirrors regexp's \b word class ([0-9A-Za-z_]); any
// non-ASCII byte belongs to a non-word rune.
func isWordByte(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// startsAtBoundary reports the \b precondition for a match beginning
// with a word character at text[c].
func startsAtBoundary(text string, c int) bool {
	return c == 0 || !isWordByte(text[c-1])
}

func mkTrigger(bytes string, pred func(c byte) bool) *[256]bool {
	var t [256]bool
	for i := 0; i < len(bytes); i++ {
		t[bytes[i]] = true
	}
	if pred != nil {
		for c := 0; c < 256; c++ {
			if pred(byte(c)) {
				t[c] = true
			}
		}
	}
	return &t
}

// textStats summarizes one pass over the scanned text with the byte
// classes the detector gates need. Every field is a *necessary*
// condition feed: gates compare against regex structure (literal bytes,
// mandatory digit counts, mandatory keyword alternations), never
// against anything a regex could match without.
type textStats struct {
	hasAt      bool // '@'
	hasDash    bool // '-'
	hasSlash   bool // '/'
	hasColon   bool // ':'
	hasEq      bool // '='
	ascii      bool // no byte >= 0x80 (keyword gates need ASCII-only text)
	digits     int  // total ASCII digit count
	maxDigRun  int  // longest run of consecutive digits
	maxAlnmRun int  // longest run of consecutive ASCII alphanumerics
	lower      string
}

// keyword reports whether an ASCII-case-insensitive keyword occurs.
// Non-ASCII text conservatively reports true: Go's (?i) uses Unicode
// case folding (e.g. U+017F matches 's'), which an ASCII fold cannot
// see, so gating on keywords is only sound for pure-ASCII input.
func (st *textStats) keyword(kws ...string) bool {
	if !st.ascii {
		return true
	}
	for _, kw := range kws {
		if strings.Contains(st.lower, kw) {
			return true
		}
	}
	return false
}

func computeStats(text string) textStats {
	st := textStats{ascii: true}
	digRun, alnmRun := 0, 0
	buf := make([]byte, len(text))
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= 0x80 {
			st.ascii = false
		}
		switch c {
		case '@':
			st.hasAt = true
		case '-':
			st.hasDash = true
		case '/':
			st.hasSlash = true
		case ':':
			st.hasColon = true
		case '=':
			st.hasEq = true
		}
		if c >= '0' && c <= '9' {
			st.digits++
			digRun++
			if digRun > st.maxDigRun {
				st.maxDigRun = digRun
			}
		} else {
			digRun = 0
		}
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			alnmRun++
			if alnmRun > st.maxAlnmRun {
				st.maxAlnmRun = alnmRun
			}
		} else {
			alnmRun = 0
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	st.lower = string(buf)
	return st
}

// computeSlimStats is computeStats without the lowered-copy buffer:
// the engine path needs only the structural counters (its literal
// prefilter replaces the keyword gates), so the one allocation of the
// full pass is dropped.
func computeSlimStats(text string) textStats {
	st := textStats{ascii: true}
	digRun, alnmRun := 0, 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch c {
		case '@':
			st.hasAt = true
		case '-':
			st.hasDash = true
		case '/':
			st.hasSlash = true
		}
		if c >= '0' && c <= '9' {
			st.digits++
			digRun++
			if digRun > st.maxDigRun {
				st.maxDigRun = digRun
			}
		} else {
			digRun = 0
		}
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			alnmRun++
			if alnmRun > st.maxAlnmRun {
				st.maxAlnmRun = alnmRun
			}
		} else {
			alnmRun = 0
		}
	}
	return st
}

var detectors = buildDetectors()

// engine compiles every detector pattern into one shared-prefilter
// multi-pattern engine; pattern id i is detectors[i]. The stdlib
// regexps on each detector stay alive as the differential oracle
// behind ScanOracle/RedactOracle and the disableEngine hook.
var engine = buildEngine()

func buildEngine() *match.Engine {
	pats := make([]string, len(detectors))
	for i := range detectors {
		pats[i] = detectors[i].pattern
	}
	return match.MustCompile(pats...)
}

// disableGates is a test hook: the gate-equivalence test re-runs Scan
// with every gate ignored and asserts identical findings.
var disableGates = false

// disableEngine is a test hook mirroring disableGates: with it set, Scan
// routes through the per-detector stdlib regexps (the oracle path) so
// differential tests can compare the engine against them.
var disableEngine = false

func buildDetectors() []detector {
	isDateSep := func(c byte) bool { return c == '/' || c == '-' }
	at := func(text string, i int) byte {
		if i < len(text) {
			return text[i]
		}
		return 0
	}
	ds := []detector{
		{
			kind:    KindEmail,
			pattern: (`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`),
			gate:    func(st *textStats) bool { return st.hasAt },
			engGate: func(st *textStats) bool { return st.hasAt },
			validate: func([]string) (string, bool) {
				return "email", true
			},
		},
		{
			kind:    KindCreditCard,
			pattern: (`\b(?:\d[ \-]?){13,19}\b`),
			gate:    func(st *textStats) bool { return st.digits >= 13 },
			engGate: func(st *textStats) bool { return st.digits >= 13 },
			// A match starts with a digit right after \b.
			trigger: mkTrigger("", isDigit),
			cand:    startsAtBoundary,
			validate: func(groups []string) (string, bool) {
				digits := digitsOnly(groups[0])
				if len(digits) < 13 || len(digits) > 19 || !luhnValid(digits) {
					return "", false
				}
				// All zeros passes Luhn trivially — and is exactly what the
				// digit-zeroing redaction step leaves behind. Not a card.
				if strings.Trim(digits, "0") == "" {
					return "", false
				}
				return CardBrand(digits), true
			},
		},
		{
			kind:    KindSSN,
			pattern: (`\b(\d{3})-(\d{2})-(\d{4})\b`),
			gate:    func(st *textStats) bool { return st.digits >= 9 && st.hasDash },
			engGate: func(st *textStats) bool { return st.digits >= 9 && st.hasDash },
			// \b then the fixed shape ddd-.
			trigger: mkTrigger("", isDigit),
			cand: func(text string, c int) bool {
				return startsAtBoundary(text, c) && isDigit(at(text, c+1)) &&
					isDigit(at(text, c+2)) && at(text, c+3) == '-'
			},
			validate: func(groups []string) (string, bool) {
				area := groups[1]
				if area == "000" || area == "666" || area >= "900" {
					return "", false
				}
				if groups[2] == "00" || groups[3] == "0000" {
					return "", false
				}
				return "ssn", true
			},
		},
		{
			kind:    KindEIN,
			pattern: (`\b(\d{2})-(\d{7})\b`),
			gate:    func(st *textStats) bool { return st.digits >= 9 && st.hasDash },
			engGate: func(st *textStats) bool { return st.digits >= 9 && st.hasDash },
			// \b then the fixed shape dd-.
			trigger: mkTrigger("", isDigit),
			cand: func(text string, c int) bool {
				return startsAtBoundary(text, c) && isDigit(at(text, c+1)) &&
					at(text, c+2) == '-'
			},
			validate: func(groups []string) (string, bool) {
				return "ein", true
			},
		},
		{
			kind:    KindPassword,
			pattern: (`(?i)\b(?:password|passwd|pwd|passphrase)\s*(?:is|:|=)?\s*(\S{3,})`),
			group:   1,
			// Every alternation contains "pass" or "pwd".
			gate: func(st *textStats) bool { return st.keyword("pass", "pwd") },
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				// Reject prose continuations ("password reset", "password for").
				switch strings.ToLower(strings.Trim(groups[1], ".,;!?")) {
				case "reset", "for", "and", "was", "has", "will", "must", "should",
					"change", "changed", "protected", "required", "policy", "the", "your":
					return "", false
				}
				return "password", true
			},
		},
		{
			kind:    KindVIN,
			pattern: (`\b[A-HJ-NPR-Za-hj-npr-z0-9]{17}\b`),
			// A match is 17 consecutive ASCII alphanumerics.
			gate:    func(st *textStats) bool { return st.maxAlnmRun >= 17 },
			engGate: func(st *textStats) bool { return st.maxAlnmRun >= 17 },
			validate: func(groups []string) (string, bool) {
				if !vinValid(strings.ToUpper(groups[0])) {
					return "", false
				}
				return "vin", true
			},
		},
		{
			kind:    KindUsername,
			pattern: (`(?i)\b(?:username|user name|login|user id|userid)\s*(?:is|:|=)?\s*(\S{2,})`),
			group:   1,
			// Every alternation contains "user" or "login".
			gate: func(st *textStats) bool { return st.keyword("user", "login") },
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				switch strings.ToLower(strings.Trim(groups[1], ".,;!?")) {
				case "and", "or", "for", "is", "was", "will", "the", "your":
					return "", false
				}
				return "username", true
			},
		},
		{
			kind: KindZip,
			// Context-anchored: either "zip[code]: 12345" or a state
			// abbreviation before it ("Pittsburgh, PA 15213[-1234]").
			pattern: (`(?i)(?:\bzip(?:\s*code)?\s*(?:is|:|=)?\s*|,\s*[A-Z]{2}\s+)(\d{5}(?:-\d{4})?)\b`),
			group:   1,
			// The capture group needs five consecutive digits.
			gate:    func(st *textStats) bool { return st.maxDigRun >= 5 },
			engGate: func(st *textStats) bool { return st.maxDigRun >= 5 },
			// A match starts with "zip" (after \b) or with the comma of the
			// ", ST " form.
			trigger: mkTrigger("zZ,", nil),
			cand: func(text string, c int) bool {
				return text[c] == ',' || startsAtBoundary(text, c)
			},
			validate: func(groups []string) (string, bool) {
				return "zip", true
			},
		},
		{
			kind:    KindIDNumber,
			pattern: (`(?i)\b(?:id|identification|member|account|case|employee|record|mrn|policy)\s*(?:number|num|no\.?|#)?\s*(?:is|:|=)\s*([A-Za-z0-9\-]{4,})`),
			group:   1,
			// "id" covers identification; the (?:is|:|=) part is mandatory.
			gate: func(st *textStats) bool {
				return st.keyword("id", "member", "account", "case", "employee", "record", "mrn", "policy") &&
					(st.hasColon || st.hasEq || st.keyword("is"))
			},
			validate: func(groups []string) (string, bool) {
				if strings.Contains(groups[1], redactSentinel) {
					return "", false // already-redacted value
				}
				return "idnumber", true
			},
		},
		{
			kind:    KindPhone,
			pattern: (`(?:\+?1[\-. ]?)?(?:\(\d{3}\)\s?|\d{3}[\-. ])\d{3}[\-. ]\d{4}\b`),
			gate:    func(st *textStats) bool { return st.digits >= 10 },
			engGate: func(st *textStats) bool { return st.digits >= 10 },
			// A match starts with '+', '(', the country prefix '1', or a
			// digit opening the ddd-separator shape (no leading \b here).
			trigger: mkTrigger("+(", isDigit),
			cand: func(text string, c int) bool {
				switch text[c] {
				case '+', '(', '1':
					return true
				}
				s := at(text, c+3)
				return isDigit(at(text, c+1)) && isDigit(at(text, c+2)) &&
					(s == '-' || s == '.' || s == ' ')
			},
			validate: func(groups []string) (string, bool) {
				return "phone", true
			},
		},
		{
			kind: KindDate,
			pattern: (`(?i)\b(?:\d{1,2}[/\-]\d{1,2}[/\-]\d{2,4}` +
				`|\d{4}-\d{2}-\d{2}` +
				`|(?:jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2}(?:st|nd|rd|th)?,?\s+\d{4})\b`),
			// Numeric forms need >= 4 digits plus a separator; the month-name
			// form needs a month keyword and >= 5 digits (day + year).
			gate: func(st *textStats) bool {
				if st.digits >= 4 && (st.hasSlash || st.hasDash) {
					return true
				}
				return st.digits >= 5 && st.keyword("jan", "feb", "mar", "apr", "may", "jun",
					"jul", "aug", "sep", "oct", "nov", "dec")
			},
			// The engine's month-literal prefilter replaces the keyword
			// check; the digit/separator conditions remain (a superset
			// of gate, so still a sound necessary condition).
			engGate: func(st *textStats) bool {
				return st.digits >= 4 && (st.hasSlash || st.hasDash) || st.digits >= 5
			},
			// A match starts (after \b) with a digit leading into one of the
			// numeric shapes, or with a month-name prefix pair. 0xC5 opens
			// U+017F (ſ), which (?i) folds into 's' for "sep".
			trigger: mkTrigger("jJfFmMaAsSoOnNdD\xC5", isDigit),
			cand: func(text string, c int) bool {
				b := text[c]
				if b >= 0x80 {
					return true // Unicode fold start; let the probe decide
				}
				if !startsAtBoundary(text, c) {
					return false
				}
				if isDigit(b) {
					return isDateSep(at(text, c+1)) || isDateSep(at(text, c+2)) ||
						isDigit(at(text, c+1)) && isDigit(at(text, c+2)) &&
							isDigit(at(text, c+3)) && at(text, c+4) == '-'
				}
				l1 := at(text, c+1) | 0x20
				switch b | 0x20 {
				case 'j':
					return l1 == 'a' || l1 == 'u'
				case 'f', 's', 'd':
					return l1 == 'e'
				case 'm':
					return l1 == 'a'
				case 'a':
					return l1 == 'p' || l1 == 'u'
				case 'o':
					return l1 == 'c'
				case 'n':
					return l1 == 'o'
				}
				return false
			},
			validate: func(groups []string) (string, bool) {
				return "date", true
			},
		},
	}
	for i := range ds {
		ds[i].re = regexp.MustCompile(ds[i].pattern)
		if ds[i].trigger != nil {
			ds[i].anchored, ds[i].anchored0 = anchor(ds[i].pattern)
		}
	}
	return ds
}

// Scan detects all sensitive identifiers in text. Overlapping findings of
// different kinds are all reported (an email address inside a username
// assignment is both). Duplicate (kind, span) pairs cannot arise: each
// kind has one regex, FindAll matches of one regex never overlap, and a
// capture group's span lies inside its match's span — so group spans are
// distinct across a detector's matches.
//
// All detectors share one multi-pattern engine pass (internal/match):
// a single scan of the text collects candidate positions for every
// pattern, and each detector then confirms its candidates. The engine is
// proven match-for-match equivalent to the per-detector regexps, which
// stay available behind ScanOracle for differential testing.
func Scan(text string) []Finding {
	if disableEngine || disableGates {
		return scanOracle(text)
	}
	return scanEngine(text)
}

// ScanOracle is Scan on the pre-engine path: per-detector stdlib
// regexps behind the detector gates. It is the reference the engine
// path is differentially tested against.
func ScanOracle(text string) []Finding { return scanOracle(text) }

// scanOracle runs every detector through its own stdlib regexp.
//
// Before any regex runs, one pass over the text collects byte-class
// statistics and each detector's gate checks a necessary condition
// (a literal trigger byte, a mandatory digit count or run, a keyword
// from a mandatory alternation). A gate only skips a regex that cannot
// match, so gating never drops a finding.
func scanOracle(text string) []Finding {
	st := computeStats(text)
	var out []Finding
	var gbuf [4]string // widest detector has 3 capture groups + whole
	for i := range detectors {
		d := &detectors[i]
		if !disableGates && d.gate != nil && !d.gate(&st) {
			continue
		}
		for _, idx := range d.findAll(text, !disableGates) {
			groups := submatchInto(gbuf[:0], text, idx)
			label, ok := "", true
			if d.validate != nil {
				label, ok = d.validate(groups)
			}
			if !ok {
				continue
			}
			gs, ge := idx[2*d.group], idx[2*d.group+1]
			//repolint:allow allochot findings are rare; preallocating would charge the identifier-free common path an allocation
			out = append(out, Finding{
				Kind: d.kind, Match: text[gs:ge], Start: gs, End: ge, Label: label,
			})
		}
	}
	sortFindings(out)
	return out
}

// scanEngine runs all detectors over one shared engine scan. Equal to
// scanOracle by construction: the engine's FindAll is proven equivalent
// to each detector regexp's FindAll (internal/match differential suite),
// engGate is a weaker necessary condition than gate, and validation,
// group selection and ordering are the same code.
func scanEngine(text string) []Finding {
	st := computeSlimStats(text)
	var out []Finding
	var gbuf [4]string // widest detector has 3 capture groups + whole
	s := engine.Scan(text)
	for i := range detectors {
		d := &detectors[i]
		if d.engGate != nil && !d.engGate(&st) {
			continue
		}
		s.FindAll(i, func(idx []int) bool {
			groups := submatchInto(gbuf[:0], text, idx)
			label, ok := "", true
			if d.validate != nil {
				label, ok = d.validate(groups)
			}
			if ok {
				gs, ge := idx[2*d.group], idx[2*d.group+1]
				out = append(out, Finding{
					Kind: d.kind, Match: text[gs:ge], Start: gs, End: ge, Label: label,
				})
			}
			return true
		})
	}
	s.Release()
	sortFindings(out)
	return out
}

// sortFindings orders findings by start offset then kind — the Scan
// contract. Ties are impossible (one regex per kind, non-overlapping
// matches per regex), so the order is total and deterministic.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
}

// KindBit returns ScanKinds' bit for kind k (detector index order).
func KindBit(k Kind) uint16 {
	for i := range detectors {
		if detectors[i].kind == k {
			return 1 << uint(i)
		}
	}
	return 0
}

// ScanKinds is Scan reduced to per-kind presence booleans, returned as
// a bitmask of KindBit values. Each detector stops at its first
// validated finding, so presence queries (Table 2 scoring, Figure 6
// tallies) do not pay for full enumeration.
func ScanKinds(text string) uint16 {
	if disableEngine || disableGates {
		var mask uint16
		for _, f := range scanOracle(text) {
			mask |= KindBit(f.Kind)
		}
		return mask
	}
	st := computeSlimStats(text)
	var mask uint16
	var gbuf [4]string
	s := engine.Scan(text)
	for i := range detectors {
		d := &detectors[i]
		if d.engGate != nil && !d.engGate(&st) {
			continue
		}
		s.FindAll(i, func(idx []int) bool {
			if d.validate != nil {
				if _, ok := d.validate(submatchInto(gbuf[:0], text, idx)); !ok {
					return true // rejected; keep scanning this detector
				}
			}
			mask |= 1 << uint(i)
			return false // one validated finding proves presence
		})
	}
	s.Release()
	return mask
}

// Kinds returns the distinct kinds present in findings.
func Kinds(findings []Finding) []Kind {
	set := map[Kind]bool{}
	for _, f := range findings {
		set[f.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	for _, k := range AllKinds() {
		if set[k] {
			out = append(out, k)
		}
	}
	return out
}

// Sanitizer redacts findings using a salted hash, so equal identifiers
// redact to equal tokens (allowing frequency analysis on redacted data)
// without being reversible.
type Sanitizer struct {
	salt []byte
}

// New creates a Sanitizer with the given salt. The paper keeps the salt
// (like the encryption key) off the collection server.
func New(salt string) *Sanitizer { return &Sanitizer{salt: []byte(salt)} }

// redactSentinel brackets every redaction token (visible in the paper's
// Figure 2 as *_|R|_*americanexpress*000...*_|R|_*).
const redactSentinel = "*_|R|_*"

// hashToken returns the redaction token for a match.
func (s *Sanitizer) hashToken(label, match string) string {
	h := sha256.New()
	h.Write(s.salt)
	h.Write([]byte(match))
	var sum [sha256.Size]byte
	var hexBuf [16]byte
	hex.Encode(hexBuf[:], h.Sum(sum[:0])[:8])
	return redactSentinel + label + "*" + string(hexBuf[:]) + redactSentinel
}

// Redact replaces every finding in text with its salted-hash token and
// then zeroes all remaining digits — the two-step scrubbing of
// Section 4.2.2. It returns the cleaned text and the findings.
func (s *Sanitizer) Redact(text string) (string, []Finding) {
	return s.redact(text, Scan(text))
}

// RedactOracle is Redact over ScanOracle's findings: the pre-engine
// redaction path, kept for byte-for-byte differential comparison.
func (s *Sanitizer) RedactOracle(text string) (string, []Finding) {
	return s.redact(text, ScanOracle(text))
}

func (s *Sanitizer) redact(text string, findings []Finding) (string, []Finding) {
	// Replace back-to-front so offsets stay valid; skip spans contained in
	// an already-replaced region.
	type span struct {
		start, end int
		token      string
	}
	spans := make([]span, 0, len(findings))
	covered := func(st, en int) bool {
		for _, sp := range spans {
			if st < sp.end && en > sp.start {
				return true
			}
		}
		return false
	}
	// Longer spans first so e.g. the credit card swallows the date-like
	// fragment inside it.
	byLen := append([]Finding(nil), findings...)
	sort.Slice(byLen, func(i, j int) bool {
		li, lj := byLen[i].End-byLen[i].Start, byLen[j].End-byLen[j].Start
		if li != lj {
			return li > lj
		}
		return byLen[i].Start < byLen[j].Start
	})
	for _, f := range byLen {
		if covered(f.Start, f.End) {
			continue
		}
		spans = append(spans, span{f.Start, f.End, s.hashToken(f.Label, f.Match)})
	}
	// Splice all replacements in one left-to-right pass; spans never
	// overlap (covered rejected them), so this equals the back-to-front
	// repeated-concat result without the quadratic copying.
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	var sb strings.Builder
	sb.Grow(len(text) + len(spans)*(2*len(redactSentinel)+24))
	pos := 0
	for _, sp := range spans {
		sb.WriteString(text[pos:sp.start])
		sb.WriteString(sp.token)
		pos = sp.end
	}
	sb.WriteString(text[pos:])
	return zeroDigitsOutsideTokens(sb.String()), findings
}

// zeroDigitsOutsideTokens zeroes every digit not inside a *_|R|_* token.
func zeroDigitsOutsideTokens(text string) string {
	const sentinel = redactSentinel
	var sb strings.Builder
	sb.Grow(len(text))
	inToken := false
	for i := 0; i < len(text); i++ {
		if strings.HasPrefix(text[i:], sentinel) {
			inToken = !inToken
			sb.WriteString(sentinel)
			i += len(sentinel) - 1
			continue
		}
		c := text[i]
		if !inToken && c >= '0' && c <= '9' {
			sb.WriteByte('0')
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Validators

func digitsOnly(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// luhnValid implements the Luhn checksum used by payment cards.
func luhnValid(digits string) bool {
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		d := int(digits[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

// CardBrand classifies a card number by its issuer prefix — the labels of
// Figure 6's heatmap rows (mastercard, jcb, dinersclub, ...).
func CardBrand(digits string) string {
	switch {
	case len(digits) == 15 && (strings.HasPrefix(digits, "34") || strings.HasPrefix(digits, "37")):
		return "americanexpress"
	case strings.HasPrefix(digits, "4"):
		return "visa"
	case len(digits) >= 2 && digits[0] == '5' && digits[1] >= '1' && digits[1] <= '5':
		return "mastercard"
	case strings.HasPrefix(digits, "6011") || strings.HasPrefix(digits, "65"):
		return "discover"
	case strings.HasPrefix(digits, "35"):
		return "jcb"
	case strings.HasPrefix(digits, "300") || strings.HasPrefix(digits, "301") ||
		strings.HasPrefix(digits, "302") || strings.HasPrefix(digits, "303") ||
		strings.HasPrefix(digits, "304") || strings.HasPrefix(digits, "305") ||
		strings.HasPrefix(digits, "36") || strings.HasPrefix(digits, "38"):
		return "dinersclub"
	default:
		return "card"
	}
}

// vinTranslit maps VIN characters to their check-digit values.
var vinTranslit = map[byte]int{
	'A': 1, 'B': 2, 'C': 3, 'D': 4, 'E': 5, 'F': 6, 'G': 7, 'H': 8,
	'J': 1, 'K': 2, 'L': 3, 'M': 4, 'N': 5, 'P': 7, 'R': 9,
	'S': 2, 'T': 3, 'U': 4, 'V': 5, 'W': 6, 'X': 7, 'Y': 8, 'Z': 9,
	'0': 0, '1': 1, '2': 2, '3': 3, '4': 4, '5': 5, '6': 6, '7': 7, '8': 8, '9': 9,
}

var vinWeights = []int{8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2}

// vinValid checks a 17-character VIN's check digit (position 9).
func vinValid(vin string) bool {
	if len(vin) != 17 {
		return false
	}
	// All-digit strings are far more likely to be something else.
	if digitsOnly(vin) == vin {
		return false
	}
	// Long runs of one character never appear in real VINs but do appear
	// in zero-redacted text, where they would re-trigger detection.
	run, prev := 1, byte(0)
	for i := 0; i < len(vin); i++ {
		if vin[i] == prev {
			run++
			if run >= 7 {
				return false
			}
		} else {
			run, prev = 1, vin[i]
		}
	}
	sum := 0
	for i := 0; i < 17; i++ {
		v, ok := vinTranslit[vin[i]]
		if !ok {
			return false
		}
		sum += v * vinWeights[i]
	}
	rem := sum % 11
	check := byte('0' + rem)
	if rem == 10 {
		check = 'X'
	}
	return vin[8] == check
}

// ComputeVINCheckDigit fills in the check digit for a 17-char VIN
// skeleton, used by the corpus generator to plant valid VINs.
func ComputeVINCheckDigit(vin string) (string, bool) {
	if len(vin) != 17 {
		return "", false
	}
	up := strings.ToUpper(vin)
	sum := 0
	for i := 0; i < 17; i++ {
		if i == 8 {
			continue
		}
		v, ok := vinTranslit[up[i]]
		if !ok {
			return "", false
		}
		sum += v * vinWeights[i]
	}
	rem := sum % 11
	check := byte('0' + rem)
	if rem == 10 {
		check = 'X'
	}
	return up[:8] + string(check) + up[9:], true
}

// LuhnComplete appends the Luhn check digit to a partial card number,
// for the corpus generator.
func LuhnComplete(partial string) string {
	for d := byte('0'); d <= '9'; d++ {
		cand := partial + string(d)
		if luhnValid(cand) {
			return cand
		}
	}
	return partial + "0" // unreachable: some digit always satisfies Luhn
}

// submatchInto fills dst (reused across matches) with the submatch
// strings for one FindAllStringSubmatchIndex entry.
func submatchInto(dst []string, text string, idx []int) []string {
	for i := 0; i < len(idx); i += 2 {
		s := ""
		if idx[i] >= 0 {
			s = text[idx[i]:idx[i+1]]
		}
		dst = append(dst, s)
	}
	return dst
}
