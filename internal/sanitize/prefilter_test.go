package sanitize

import (
	"fmt"
	"reflect"
	"testing"
)

// gateCases covers every detector's trigger, near-misses that the gates
// must not mistake for impossibilities, and the Unicode case-folding
// traps ((?i) folds U+017F to 's' and U+212A to 'k', which an ASCII
// keyword scan cannot see — non-ASCII text must bypass keyword gates).
var gateCases = []string{
	"",
	"plain prose with no identifiers at all",
	"reach me at alice.smith@example.com today",
	"my card is 4111 1111 1111 1111 thanks",
	"ssn 219-09-9999 on file",
	"ein 12-3456789 for the llc",
	"password: hunter2!",
	"Passphrase correct-horse-battery-staple",
	"pwd=abc123",
	"the vin is 1M8GDM9AXKP042788 ok",
	"username is jdoe42",
	"login: root",
	"Pittsburgh, PA 15213-1234",
	"zip code 90210",
	"account number is 445-0098-X",
	"mrn: 88811122",
	"call 412-268-3000 or (212) 555-0199",
	"due 3/14/2016 or 2016-03-14 or March 14, 2016",
	"paſsword is hunter2",          // U+017F long s folds to 's'
	"uſername is jdoe",             // ditto inside "user"
	"ID\u017F is 12345678",         // non-ASCII near the id keyword
	"d\u00e9c 14, 2016 total 1234", // accented non-month, digits present
	"12345678901234567",            // 17-digit run: vin gate fires, validator rejects
	"passwood is not a keyword hit for passw... or is it",
	"identification = A1B2C3D4",
	"no digits but pass and user and id words everywhere",
	"1-2-3-4-5-6-7-8-9",
	"ABCDEFGHJKLMNPRSTU",    // 18-char alnum run, no valid vin
	"99999 44444 333 22 11", // digit runs without context
}

// scanUngated runs Scan with every prefilter gate disabled.
func scanUngated(text string) []Finding {
	disableGates = true
	defer func() { disableGates = false }()
	return Scan(text)
}

// TestGateEquivalence is the false-negative proof obligation for the
// prefilter: on every case, gated and ungated scans must return
// identical findings.
func TestGateEquivalence(t *testing.T) {
	for _, text := range gateCases {
		gated := Scan(text)
		ungated := scanUngated(text)
		if !reflect.DeepEqual(gated, ungated) {
			t.Errorf("gated scan differs on %q:\n gated:   %v\n ungated: %v", text, gated, ungated)
		}
	}
}

// FuzzGateEquivalence extends the differential check to arbitrary
// mutations of the seed cases.
func FuzzGateEquivalence(f *testing.F) {
	for _, text := range gateCases {
		f.Add(text)
	}
	f.Fuzz(func(t *testing.T, text string) {
		gated := Scan(text)
		ungated := scanUngated(text)
		if !reflect.DeepEqual(gated, ungated) {
			t.Fatalf("gated scan differs on %q:\n gated:   %v\n ungated: %v", text, gated, ungated)
		}
	})
}

// TestGatesActuallySkip pins the point of the prefilter: on identifier-
// free prose, every regex is skipped.
func TestGatesActuallySkip(t *testing.T) {
	st := computeStats("the quick brown fox jumps over the lazy dog")
	for _, d := range buildDetectors() {
		if d.gate == nil {
			t.Errorf("%s has no gate", d.kind)
			continue
		}
		if d.gate(&st) {
			t.Errorf("%s gate fires on identifier-free prose", d.kind)
		}
	}
}

func ExampleScan() {
	for _, f := range Scan("password: hunter2, card 4111 1111 1111 1111") {
		fmt.Println(f.Kind, f.Match)
	}
	// Output:
	// password hunter2,
	// creditcard 4111 1111 1111 1111
}
