// Corpus-driven engine/oracle differentials live in the external test
// package: the corpus generator imports sanitize, so seeding from it
// inside package sanitize would be an import cycle.
package sanitize_test

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sanitize"
)

// TestEngineOracleCorpus replays the engine/oracle differential over
// realistic text: Table 2 Enron-style documents (every planted kind)
// and messages from every Table 3 spam dataset. Scan findings and
// Redact output must be identical on both paths.
func TestEngineOracleCorpus(t *testing.T) {
	var texts []string
	opts := corpus.DefaultEnronOptions()
	opts.Plain, opts.PerKind = 80, 8
	for _, d := range corpus.GenerateEnron(opts) {
		texts = append(texts, d.Text, d.Subject)
	}
	for _, ds := range corpus.AllDatasets() {
		msgs := corpus.Generate(ds)
		for i := 0; i < len(msgs) && i < 60; i++ {
			texts = append(texts, msgs[i].Msg.Text(), msgs[i].Msg.Subject())
		}
	}
	s := sanitize.New("corpus-differential-salt")
	for _, text := range texts {
		eng := sanitize.Scan(text)
		ora := sanitize.ScanOracle(text)
		if !(len(eng) == 0 && len(ora) == 0) && !reflect.DeepEqual(eng, ora) {
			t.Fatalf("engine/oracle findings differ on %q:\n engine: %v\n oracle: %v", text, eng, ora)
		}
		cleanEng, _ := s.Redact(text)
		cleanOra, _ := s.RedactOracle(text)
		if cleanEng != cleanOra {
			t.Fatalf("redaction differs on %q:\n engine: %q\n oracle: %q", text, cleanEng, cleanOra)
		}
	}
}
