// Fuzzing against the Enron-style corpus lives in an external test
// package: the corpus generator imports sanitize, so seeding from it
// inside package sanitize would be an import cycle.
package sanitize_test

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sanitize"
)

// FuzzRedactCorpus seeds the redactor with realistic emails — plain
// Enron-style prose, every planted identifier kind, and the tricky
// near-miss documents — then asserts the Section 4.2.2 storage
// invariant on arbitrary mutations of them: no high-value identifier
// with live digits survives redaction, and redaction is idempotent.
func FuzzRedactCorpus(f *testing.F) {
	docs := corpus.GenerateEnron(corpus.EnronOptions{Plain: 8, PerKind: 3, Seed: 2016})
	for _, d := range docs {
		f.Add(d.Subject + "\n\n" + d.Text)
	}
	s := sanitize.New("fuzz-salt")
	f.Fuzz(func(t *testing.T, text string) {
		once, _ := s.Redact(text)
		twice, _ := s.Redact(once)
		if once != twice {
			t.Fatalf("redaction not idempotent:\n%q\n%q", once, twice)
		}
		for _, finding := range sanitize.Scan(once) {
			switch finding.Kind {
			case sanitize.KindCreditCard, sanitize.KindSSN, sanitize.KindEIN, sanitize.KindVIN:
				if strings.ContainsAny(finding.Match, "123456789") &&
					!strings.Contains(finding.Match, "*_|R|_*") {
					t.Fatalf("%s %q survived redaction of %q", finding.Kind, finding.Match, text)
				}
			}
		}
	})
}

// TestRedactCleansWholeCorpus runs the full default-size corpus through
// the redactor once — the deterministic complement to the fuzz target,
// always exercised by `go test`.
func TestRedactCleansWholeCorpus(t *testing.T) {
	s := sanitize.New("corpus-salt")
	for i, d := range corpus.GenerateEnron(corpus.DefaultEnronOptions()) {
		clean, _ := s.Redact(d.Text)
		for _, finding := range sanitize.Scan(clean) {
			switch finding.Kind {
			case sanitize.KindCreditCard, sanitize.KindSSN, sanitize.KindEIN, sanitize.KindVIN:
				if strings.ContainsAny(finding.Match, "123456789") &&
					!strings.Contains(finding.Match, "*_|R|_*") {
					t.Fatalf("doc %d: %s %q survived redaction", i, finding.Kind, finding.Match)
				}
			}
		}
	}
}
