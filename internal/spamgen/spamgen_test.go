package spamgen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mailmsg"
	"repro/internal/spamfilter"
)

func TestDayVolumeRampAndScale(t *testing.T) {
	g := New(DefaultParams(), 1)
	early, late := 0, 0
	const reps = 50
	for i := 0; i < reps; i++ {
		early += g.DayVolume(0, 1, false)
		late += g.DayVolume(120, 1, false)
	}
	if early >= late {
		t.Errorf("discovery ramp missing: day0=%d day120=%d", early, late)
	}
	// SMTP traps draw roughly SMTPRelayFactor more.
	direct, relay := 0, 0
	for i := 0; i < reps; i++ {
		direct += g.DayVolume(120, 1, false)
		relay += g.DayVolume(120, 1, true)
	}
	ratio := float64(relay) / float64(direct)
	if ratio < 3 || ratio > 12 {
		t.Errorf("relay/direct ratio = %.1f, want ~6.3", ratio)
	}
}

func TestDayVolumeZeroAttractiveness(t *testing.T) {
	g := New(DefaultParams(), 2)
	if v := g.DayVolume(10, 0, false); v != 0 {
		t.Errorf("zero attractiveness volume = %d", v)
	}
}

func TestAggregateYearlyScale(t *testing.T) {
	// 76 domains over a year should land within a factor of ~3 of the
	// paper's 119M/yr (45 of them SMTP traps).
	g := New(DefaultParams(), 3)
	total := 0.0
	for d := 0; d < 365; d++ {
		for dom := 0; dom < 31; dom++ {
			total += float64(g.DayVolume(d, 1, false))
		}
		for dom := 0; dom < 45; dom++ {
			total += float64(g.DayVolume(d, 1, true))
		}
	}
	if total < 40e6 || total > 400e6 {
		t.Errorf("yearly volume = %.3g, paper: 1.19e8", total)
	}
}

func TestMaterializeReceiverCandidates(t *testing.T) {
	g := New(DefaultParams(), 4)
	emails := g.Materialize(200, "gmial.com", false)
	if len(emails) != 200 {
		t.Fatalf("materialized %d", len(emails))
	}
	spoofed := 0
	for _, e := range emails {
		if e.SMTPTypoDomain {
			t.Fatal("receiver candidate marked SMTP")
		}
		if mailmsg.AddrDomain(e.RcptAddr) != "gmial.com" {
			t.Fatalf("rcpt %q not at our domain", e.RcptAddr)
		}
		if e.ServerDomain != "gmial.com" {
			t.Fatalf("server domain %q", e.ServerDomain)
		}
		if mailmsg.AddrDomain(e.SenderAddr) == "gmial.com" {
			spoofed++
		}
	}
	if spoofed == 0 {
		t.Error("no self-spoofed senders; Layer 1 would be untested")
	}
	if spoofed > 60 {
		t.Errorf("spoofed = %d of 200, too many", spoofed)
	}
}

func TestMaterializeSMTPTrapCandidates(t *testing.T) {
	g := New(DefaultParams(), 5)
	emails := g.Materialize(100, "smtpverizon.net", true)
	for _, e := range emails {
		if !e.SMTPTypoDomain {
			t.Fatal("trap candidate not marked")
		}
		if mailmsg.AddrDomain(e.RcptAddr) == "smtpverizon.net" {
			t.Fatalf("trap rcpt addressed to us: %q", e.RcptAddr)
		}
	}
}

func TestMaterializedSpamMostlyCaught(t *testing.T) {
	g := New(DefaultParams(), 6)
	// A representative sample: campaigns must repeat for Layer 5 to see
	// them, as they do at the study's real sampling volume.
	emails := g.Materialize(2000, "gmial.com", false)
	// Sampled-regime thresholds, as the study calibrates with: one-in-N
	// sampling turns the paper's threshold of 10 into "any duplicate".
	c := spamfilter.NewClassifier(spamfilter.Config{
		OurDomains:       map[string]bool{"gmial.com": true},
		RcptThreshold:    2,
		SenderThreshold:  1,
		ContentThreshold: 1,
	})
	results := c.Classify(emails)
	counts := spamfilter.CountByVerdict(results)
	caught := 0
	for v, n := range counts {
		if v.IsSpamVerdict() || v == spamfilter.VerdictReflection || v == spamfilter.VerdictFrequency {
			caught += n
		}
	}
	frac := float64(caught) / float64(len(emails))
	if frac < 0.95 {
		t.Errorf("funnel caught %.2f of materialized spam, want >= 0.95", frac)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mean := range []float64{0, 0.5, 3, 20, 200} {
		const n = 5000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(Poisson(rng, mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		if math.Abs(m-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if mean > 0 {
			variance := sumSq/n - m*m
			if variance < mean*0.7 || variance > mean*1.4 {
				t.Errorf("Poisson(%v) variance = %v", mean, variance)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(DefaultParams(), 9), New(DefaultParams(), 9)
	for d := 0; d < 20; d++ {
		if a.DayVolume(d, 1, false) != b.DayVolume(d, 1, false) {
			t.Fatal("DayVolume not deterministic")
		}
	}
	ea, eb := a.Materialize(5, "x.com", false), b.Materialize(5, "x.com", false)
	for i := range ea {
		if ea[i].RcptAddr != eb[i].RcptAddr || ea[i].Msg.Body != eb[i].Msg.Body {
			t.Fatal("Materialize not deterministic")
		}
	}
}
