// Package spamgen models the spam flood that dominated the study's
// collection: the paper's infrastructure received ~119M emails/year, of
// which all but a few thousand were spam. Simulating every message is
// pointless; instead the generator produces per-day aggregate counts
// from a campaign process (DESIGN.md §5), and materializes a
// deterministic sample of individual messages so the filtering funnel's
// stage rates can be measured on real inputs and applied to the
// aggregates.
//
// Two spam populations differ by an order of magnitude, matching
// Section 4.4.1: mail addressed *to* the typo domains (receiver-typo
// candidates, 16.2M/yr) and mail hitting the servers as attempted relay
// or blind delivery to third parties (SMTP-typo candidates, 102.7M/yr).
package spamgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/mailmsg"
	"repro/internal/par"
	"repro/internal/reputation"
	"repro/internal/spamfilter"
	"repro/internal/users"
)

// Params tunes the arrival process.
type Params struct {
	// BaseDaily is the mean spam/day for a freshly registered typo domain
	// addressed directly to it.
	BaseDaily float64
	// SMTPRelayFactor scales the third-party-addressed flood hitting the
	// SMTP trap domains (the paper's 102.7M vs 16.2M split ≈ 6.3x).
	SMTPRelayFactor float64
	// DiscoveryDays is the time constant of spammers discovering a new
	// catch-all (volumes ramp up as harvesters notice it).
	DiscoveryDays float64
	// Burstiness is the lognormal sigma of day-to-day volume.
	Burstiness float64
}

// DefaultParams matches the paper's aggregate volumes at 76 domains over
// 225 days (~119M/yr total).
func DefaultParams() Params {
	return Params{
		BaseDaily:       2000,
		SMTPRelayFactor: 8,
		DiscoveryDays:   30,
		Burstiness:      0.5,
	}
}

// Generator produces aggregate day counts and sample messages.
type Generator struct {
	P   Params
	rng *rand.Rand
	rep *reputation.DB
}

// New creates a Generator with its own deterministic stream.
func New(p Params, seed int64) *Generator {
	return &Generator{P: p, rng: par.Rand(seed, 0)}
}

// SetReputationDB attaches a hash-reputation feed: the generator submits
// its malicious payloads (ZIP/RAR droppers) to it the way AV vendors
// populate VirusTotal, enabling the Section 4.4.3 sweep.
func (g *Generator) SetReputationDB(db *reputation.DB) { g.rep = db }

// DayVolume returns the spam count arriving at one domain on day d
// (0-based since its registration). attractiveness scales with the
// target's popularity; smtpTrap selects the relay-flood population.
func (g *Generator) DayVolume(day int, attractiveness float64, smtpTrap bool) int {
	ramp := 1 - math.Exp(-float64(day+1)/g.P.DiscoveryDays)
	mean := g.P.BaseDaily * attractiveness * ramp
	if smtpTrap {
		mean *= g.P.SMTPRelayFactor
	}
	noise := math.Exp(g.rng.NormFloat64() * g.P.Burstiness)
	return poisson(g.rng, mean*noise)
}

// Materialize builds n sample spam emails bound for ourDomain, as they
// would arrive on the wire: campaign-correlated content, spoofed
// senders, occasionally spoofing the destination domain itself (the
// Layer 1 tell). For SMTP traps the recipients are third parties.
func (g *Generator) Materialize(n int, ourDomain string, smtpTrap bool) []*spamfilter.Email {
	out := make([]*spamfilter.Email, 0, n)
	for i := 0; i < n; i++ {
		// Campaigns are drawn from a fixed global pool: real campaigns
		// repeat the same body far past Layer 5's content threshold, which
		// is how evasive (low-score) campaigns still get filtered. The pool
		// must not scale with the batch size, or single-message batches
		// would all collapse onto campaign zero.
		campaign := g.rng.Intn(400)
		msg := corpus.CampaignMessage(g.rng, campaign, 0.25)
		rcpt := fmt.Sprintf("%s@%s", users.RandomLocalPart(g.rng), ourDomain)
		if smtpTrap {
			rcpt = fmt.Sprintf("%s@%s", users.RandomLocalPart(g.rng),
				[]string{"gmail.com", "yahoo.com", "corp.example"}[g.rng.Intn(3)])
		}
		msg.SetHeader("To", rcpt)
		sender := mailmsg.Addr(msg.From())
		if g.rng.Float64() < 0.08 {
			// Spammers posing as the destination domain (Layer 1 catches it).
			sender = fmt.Sprintf("admin@%s", ourDomain)
			msg.SetHeader("From", sender)
		}
		if g.rep != nil {
			for _, a := range msg.Attachments {
				switch a.Ext() {
				case "zip", "rar":
					g.rep.Submit(a.Data, reputation.VerdictMalicious)
				default:
					if g.rng.Float64() < 0.05 { // a few widely-shared benign files
						g.rep.Submit(a.Data, reputation.VerdictBenign)
					}
				}
			}
		}
		out = append(out, &spamfilter.Email{
			Msg:            msg,
			ServerDomain:   ourDomain,
			RcptAddr:       rcpt,
			SenderAddr:     sender,
			SMTPTypoDomain: smtpTrap,
		})
	}
	return out
}

// poisson samples a Poisson variate; for large means it uses the normal
// approximation (exact shape is irrelevant at 10^5/day).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Poisson exposes the sampler for other generators.
func Poisson(rng *rand.Rand, mean float64) int { return poisson(rng, mean) }
