package faultnet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind identifies one injected fault.
type Kind uint8

// Fault kinds, in the order a connection can experience them.
const (
	KindDialRefused Kind = iota
	KindDialTimeout
	KindDialLatency
	KindLatency
	KindPartialRead
	KindFragWrite
	KindReset
	KindTruncate
	KindBandwidth
	KindDropPacket
)

var kindNames = [...]string{
	KindDialRefused: "dial-refused",
	KindDialTimeout: "dial-timeout",
	KindDialLatency: "dial-latency",
	KindLatency:     "latency",
	KindPartialRead: "partial-read",
	KindFragWrite:   "frag-write",
	KindReset:       "reset",
	KindTruncate:    "truncate",
	KindBandwidth:   "bandwidth-cap",
	KindDropPacket:  "drop-packet",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dir is the direction a stream fault applied to, from the wrapped
// endpoint's point of view.
type Dir uint8

// Directions.
const (
	DirNone Dir = iota
	DirRead
	DirWrite
)

func (d Dir) String() string {
	switch d {
	case DirRead:
		return "read"
	case DirWrite:
		return "write"
	default:
		return "-"
	}
}

// Event is one injected fault. Conn is the Net-wide connection sequence
// number, Seq the per-connection event index (dial events carry Seq 0),
// Off the direction's byte (or packet) offset when the fault fired, and
// Arg the kind-specific magnitude: latency in nanoseconds, the clipped
// size of a partial read, a fragmentation split point, a truncation
// budget, a bandwidth cap, or a dropped datagram's size.
type Event struct {
	Conn int64
	Seq  int64
	Kind Kind
	Dir  Dir
	Off  int64
	Arg  int64
}

func (e Event) String() string {
	switch e.Kind {
	case KindDialRefused, KindDialTimeout:
		return fmt.Sprintf("conn=%d %s", e.Conn, e.Kind)
	case KindDialLatency:
		return fmt.Sprintf("conn=%d %s arg=%s", e.Conn, e.Kind, time.Duration(e.Arg))
	case KindLatency:
		return fmt.Sprintf("conn=%d seq=%d %s dir=%s off=%d arg=%s",
			e.Conn, e.Seq, e.Kind, e.Dir, e.Off, time.Duration(e.Arg))
	default:
		return fmt.Sprintf("conn=%d seq=%d %s dir=%s off=%d arg=%d",
			e.Conn, e.Seq, e.Kind, e.Dir, e.Off, e.Arg)
	}
}

// Trace returns every recorded fault, sorted by (Conn, Seq) — a total
// order that does not depend on goroutine scheduling, so two runs with
// the same seed and the same per-connection workload compare equal.
func (n *Net) Trace() []Event {
	n.mu.Lock()
	out := make([]Event, len(n.events))
	copy(out, n.events)
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Conn != out[j].Conn {
			return out[i].Conn < out[j].Conn
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// TraceString renders the sorted trace one event per line — the golden
// format the determinism tests pin.
func (n *Net) TraceString() string {
	evs := n.Trace()
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Counts tallies the trace by kind — the soak's quick shape check that
// escalating plans actually injected what they promised.
func (n *Net) Counts() map[Kind]int64 {
	m := make(map[Kind]int64)
	for _, e := range n.Trace() {
		m[e.Kind]++
	}
	return m
}
