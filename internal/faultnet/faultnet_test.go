package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected loopback (client, server) pair, the client
// side dialed through fn's fault plan.
func tcpPair(t *testing.T, fn *Net) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err := fn.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial through faultnet: %v", err)
	}
	srv := <-ch
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	t.Cleanup(func() { client.Close(); srv.c.Close() })
	return client, srv.c
}

func TestDialFaults(t *testing.T) {
	cases := []struct {
		name     string
		plan     Plan
		wantKind Kind
		check    func(t *testing.T, err error)
	}{
		{
			name:     "refused",
			plan:     Plan{DialRefuseRate: 1},
			wantKind: KindDialRefused,
			check: func(t *testing.T, err error) {
				if !errors.Is(err, ErrRefused) {
					t.Errorf("err = %v, want ErrRefused", err)
				}
			},
		},
		{
			name:     "timeout",
			plan:     Plan{DialTimeoutRate: 1},
			wantKind: KindDialTimeout,
			check: func(t *testing.T, err error) {
				var nerr net.Error
				if !errors.As(err, &nerr) || !nerr.Timeout() {
					t.Errorf("err = %v, want net.Error with Timeout()", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fn := New(1, tc.plan)
			_, err := fn.DialContext(context.Background(), "tcp", "127.0.0.1:1")
			if err == nil {
				t.Fatal("dial succeeded under a certain dial fault")
			}
			tc.check(t, err)
			tr := fn.Trace()
			if len(tr) != 1 || tr[0].Kind != tc.wantKind || tr[0].Conn != 1 {
				t.Errorf("trace = %v, want one %s on conn 1", tr, tc.wantKind)
			}
		})
	}
}

func TestDialLatencySleepsThroughHook(t *testing.T) {
	var slept []time.Duration
	fn := New(3, Plan{
		DialLatencyRate: 1,
		LatencyMin:      5 * time.Millisecond,
		LatencyMax:      10 * time.Millisecond,
	}, WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	c, s := tcpPair(t, fn)
	_ = s
	c.Close()
	if len(slept) != 1 {
		t.Fatalf("sleeps = %v, want exactly one", slept)
	}
	if slept[0] < 5*time.Millisecond || slept[0] > 10*time.Millisecond {
		t.Errorf("latency %v outside plan bounds", slept[0])
	}
	tr := fn.Trace()
	if len(tr) != 1 || tr[0].Kind != KindDialLatency || tr[0].Arg != int64(slept[0]) {
		t.Errorf("trace = %v, want one dial-latency with arg %v", tr, slept[0])
	}
}

func TestTruncateCutsStreamAtPlannedOffset(t *testing.T) {
	const cut = 10
	fn := New(5, Plan{TruncateRate: 1, TruncateMin: cut, TruncateMax: cut})
	c, s := tcpPair(t, fn)
	if _, err := s.Write(bytes.Repeat([]byte{'x'}, 100)); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("ReadAll after truncation = %v, want clean EOF", err)
	}
	if len(got) != cut {
		t.Fatalf("read %d bytes, want exactly the %d-byte truncation budget", len(got), cut)
	}
	var ev *Event
	for _, e := range fn.Trace() {
		if e.Kind == KindTruncate {
			ev = &e
			break
		}
	}
	if ev == nil {
		t.Fatal("no truncate event in trace")
	}
	if ev.Off != cut || ev.Arg != cut || ev.Dir != DirRead {
		t.Errorf("truncate event = %+v, want off=arg=%d dir=read", ev, cut)
	}
}

func TestResetIsStickyAndClassifiesAsReset(t *testing.T) {
	fn := New(7, Plan{Read: DirPlan{ResetRate: 1}})
	c, s := tcpPair(t, fn)
	if _, err := s.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_, err := c.Read(buf)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("first read err = %v, want ErrReset", err)
	}
	if _, err2 := c.Read(buf); !errors.Is(err2, ErrReset) {
		t.Fatalf("reset not sticky: second read err = %v", err2)
	}
	tr := fn.Trace()
	if len(tr) != 1 || tr[0].Kind != KindReset || tr[0].Off != 0 {
		t.Errorf("trace = %v, want exactly one reset at offset 0", tr)
	}
}

func TestPartialReadsStillDeliverEverything(t *testing.T) {
	fn := New(11, Plan{Read: DirPlan{PartialRate: 1}})
	c, s := tcpPair(t, fn)
	payload := bytes.Repeat([]byte("abcdefgh"), 32) // 256 bytes
	go func() {
		s.Write(payload)
		s.Close()
	}()
	var got bytes.Buffer
	buf := make([]byte, 64)
	sawShort := false
	for {
		n, err := c.Read(buf)
		if n > 0 {
			if n < len(buf) {
				sawShort = true
			}
			got.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("reassembled %d bytes, want %d identical", got.Len(), len(payload))
	}
	if !sawShort {
		t.Error("PartialRate=1 but no short read observed")
	}
	found := false
	for _, e := range fn.Trace() {
		if e.Kind == KindPartialRead && e.Dir == DirRead {
			found = true
			if e.Arg <= 0 || e.Arg > 33 {
				t.Errorf("partial-read arg = %d, want 1..(cap/2+1)", e.Arg)
			}
		}
	}
	if !found {
		t.Error("no partial-read events in trace")
	}
}

func TestWriteFragmentationPreservesBytes(t *testing.T) {
	fn := New(13, Plan{Write: DirPlan{PartialRate: 1}})
	c, s := tcpPair(t, fn)
	payload := bytes.Repeat([]byte("0123456789"), 20)
	done := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(s)
		done <- b
	}()
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v; want full write", n, err)
	}
	c.Close()
	if got := <-done; !bytes.Equal(got, payload) {
		t.Fatalf("peer got %d bytes, want %d identical", len(got), len(payload))
	}
	tr := fn.Trace()
	if len(tr) == 0 || tr[0].Kind != KindFragWrite {
		t.Fatalf("trace = %v, want a frag-write event", tr)
	}
	if tr[0].Arg <= 0 || tr[0].Arg >= int64(len(payload)) {
		t.Errorf("split point %d outside payload", tr[0].Arg)
	}
}

func TestBandwidthCapClampsReads(t *testing.T) {
	fn := New(17, Plan{Read: DirPlan{MaxOpBytes: 4}})
	c, s := tcpPair(t, fn)
	go func() {
		s.Write(bytes.Repeat([]byte{'y'}, 64))
		s.Close()
	}()
	buf := make([]byte, 64)
	total := 0
	for {
		n, err := c.Read(buf)
		if n > 4 {
			t.Fatalf("read %d bytes in one op, cap is 4", n)
		}
		total += n
		if err != nil {
			break
		}
	}
	if total != 64 {
		t.Fatalf("total = %d, want 64", total)
	}
	counts := fn.Counts()
	if counts[KindBandwidth] != 1 {
		t.Errorf("bandwidth-cap events = %d, want exactly one per direction used", counts[KindBandwidth])
	}
}

func TestPacketDropBothDirections(t *testing.T) {
	fn := New(19, Plan{DropRate: 1})
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc := fn.PacketConn(inner)
	defer pc.Close()
	peer, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	// Outbound: the datagram reports success but never arrives.
	if _, err := pc.WriteTo([]byte("q"), peer.LocalAddr()); err != nil {
		t.Fatalf("dropped WriteTo errored: %v", err)
	}
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, _, err := peer.ReadFrom(make([]byte, 16)); err == nil {
		t.Fatalf("peer received %d bytes through a DropRate=1 plan", n)
	}
	// Inbound: the datagram is consumed and discarded.
	if _, err := peer.WriteTo([]byte("r"), pc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, _, err := pc.ReadFrom(make([]byte, 16)); err == nil {
		t.Fatalf("ReadFrom returned %d bytes through a DropRate=1 plan", n)
	}
	counts := fn.Counts()
	if counts[KindDropPacket] != 2 {
		t.Errorf("drop events = %d, want 2 (one per direction)", counts[KindDropPacket])
	}
}

// runScripted drives a deterministic workload through a fresh Net and
// returns its trace: five sequential dials to an echo server, each
// writing 256 bytes and reading until error or echo completion.
func runScripted(t *testing.T, seed int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	fn := New(seed, Composite(0.5), WithSleep(func(time.Duration) {}))
	payload := bytes.Repeat([]byte("deterministic!"), 19) // 266 bytes
	for i := 0; i < 5; i++ {
		c, err := fn.DialContext(context.Background(), "tcp", ln.Addr().String())
		if err != nil {
			continue // dial fault: planned, traced
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write(payload); err == nil {
			buf := make([]byte, len(payload))
			io.ReadFull(c, buf)
		}
		c.Close()
	}
	return fn.TraceString()
}

// TestGoldenTraceReplay is the determinism contract: the same seed over
// the same workload reproduces the identical event trace, and a
// different seed produces a different one.
func TestGoldenTraceReplay(t *testing.T) {
	a := runScripted(t, 20160604)
	b := runScripted(t, 20160604)
	if a != b {
		t.Fatalf("same seed, different traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("composite(0.5) over 5 connections injected nothing")
	}
	if c := runScripted(t, 20160605); c == a {
		t.Error("different seed reproduced the identical trace")
	}
}

// TestTraceOrderIsSchedulerIndependent sorts by (conn, seq) no matter
// the recording interleaving.
func TestTraceOrderIsSchedulerIndependent(t *testing.T) {
	fn := New(1, Plan{})
	fn.record(Event{Conn: 2, Seq: 1, Kind: KindReset})
	fn.record(Event{Conn: 1, Seq: 2, Kind: KindLatency})
	fn.record(Event{Conn: 1, Seq: 1, Kind: KindPartialRead})
	tr := fn.Trace()
	want := []struct{ conn, seq int64 }{{1, 1}, {1, 2}, {2, 1}}
	for i, w := range want {
		if tr[i].Conn != w.conn || tr[i].Seq != w.seq {
			t.Fatalf("trace[%d] = %+v, want conn=%d seq=%d", i, tr[i], w.conn, w.seq)
		}
	}
}

func TestKindAndDirStrings(t *testing.T) {
	for k := KindDialRefused; k <= KindDropPacket; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if DirRead.String() != "read" || DirWrite.String() != "write" || DirNone.String() != "-" {
		t.Error("Dir strings wrong")
	}
}
