// Package faultnet is a deterministic fault-injection transport for the
// collection pipeline's tests. The paper's infrastructure ran unattended
// against the open Internet for seven months (Section 4), where
// connections stall, reset mid-DATA and resolvers flap; faultnet
// reproduces exactly those conditions on localhost, seeded, so every
// failure sequence replays bit-for-bit.
//
// A *Net wraps the three transport shapes the pipeline uses — dialers
// (smtpc, probe, whois, resolve's TCP fallback), stream listeners
// (smtpd, whois) and packet conns (dnsserve, resolve's UDP path) — and
// executes a Plan of per-direction faults: injected latency, partial
// reads, write fragmentation, mid-stream connection reset, dial refusal
// and dial timeout, byte truncation, bandwidth caps, and datagram drop.
//
// Determinism contract: every connection gets its own PRNG derived from
// (Net seed, connection sequence number), so the fault stream of
// connection k depends only on the seed and k — never on scheduling,
// wall time, or other connections. A workload that dials (or accepts)
// in a deterministic order therefore produces an identical Trace and
// identical outcomes on every run. Faults that would need real waiting
// to observe (dial timeout) are synthesized immediately as timeout
// errors, keeping replays fast and exact.
package faultnet

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Errors injected by the transport. They unwrap through the *net.OpError
// faultnet returns, so errors.Is works on what clients see.
var (
	// ErrReset is a synthesized mid-stream ECONNRESET.
	ErrReset = errors.New("faultnet: connection reset by peer")
	// ErrRefused is a synthesized dial-time connection refusal.
	ErrRefused = errors.New("faultnet: connection refused")
)

// timeoutErr satisfies net.Error with Timeout() == true, so clients
// classify a synthesized dial timeout exactly like a real one.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "faultnet: i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// ErrDialTimeout is the synthesized dial-timeout cause; it reports
// Timeout() == true through the net.Error interface.
var ErrDialTimeout net.Error = timeoutErr{}

// DirPlan is the fault plan of one stream direction (as seen from the
// wrapped endpoint: Read faults hit inbound bytes, Write faults hit
// outbound bytes).
type DirPlan struct {
	// LatencyRate is the per-operation probability of injected latency,
	// drawn uniformly from [LatencyMin, LatencyMax].
	LatencyRate            float64
	LatencyMin, LatencyMax time.Duration
	// PartialRate is the per-operation probability of a short transfer:
	// reads return a prefix of what was asked for; writes are split into
	// two back-to-back segments (stressing peers against fragmentation).
	PartialRate float64
	// ResetRate is the per-operation probability of a synthesized
	// ECONNRESET. The fault is sticky: the connection is dead afterwards.
	ResetRate float64
	// MaxOpBytes caps the bytes moved per operation (a crude bandwidth
	// model); 0 means uncapped.
	MaxOpBytes int
}

// Plan is a complete fault plan for a Net.
type Plan struct {
	// Dial-time faults, applied in this order: refusal, timeout, latency.
	DialRefuseRate  float64
	DialTimeoutRate float64
	DialLatencyRate float64
	// Dial latency bounds (also used by DirPlan draws when its own
	// bounds are zero).
	LatencyMin, LatencyMax time.Duration
	// TruncateRate is the per-connection probability that the inbound
	// byte stream is cut (EOF, underlying conn closed) after a budget
	// drawn uniformly from [TruncateMin, TruncateMax] bytes.
	TruncateRate             float64
	TruncateMin, TruncateMax int64
	// DropRate is the per-datagram drop probability on packet conns,
	// applied independently to sends and receives.
	DropRate float64
	// Read and Write are the per-direction stream plans.
	Read, Write DirPlan
}

// Composite builds a Plan whose individual fault rates are all derived
// from one composite rate in [0, 1] — the knob the chaos soak escalates.
// Latency bounds are microseconds-scale so soaks stay fast.
func Composite(rate float64) Plan {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	dir := DirPlan{
		LatencyRate: rate / 2,
		LatencyMin:  50 * time.Microsecond,
		LatencyMax:  500 * time.Microsecond,
		PartialRate: rate,
		ResetRate:   rate / 20,
	}
	return Plan{
		DialRefuseRate:  rate / 10,
		DialTimeoutRate: rate / 20,
		DialLatencyRate: rate / 2,
		LatencyMin:      50 * time.Microsecond,
		LatencyMax:      500 * time.Microsecond,
		TruncateRate:    rate / 20,
		TruncateMin:     64,
		TruncateMax:     2048,
		DropRate:        rate / 5,
		Read:            dir,
		Write:           dir,
	}
}

// DialFunc matches the dialer seams across the pipeline
// (smtpc.Client.Dialer, probe, whois, resolve).
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Net hands out fault-injecting transport wrappers driven by one seed.
type Net struct {
	plan  Plan
	seed  int64
	sleep func(time.Duration)

	mu       sync.Mutex
	nextConn int64
	events   []Event
}

// Option configures a Net.
type Option func(*Net)

// WithSleep substitutes the sleep used for injected latency. Passing a
// no-op makes latency purely a traced event — the chaos soak does this
// so wall time never influences outcomes.
func WithSleep(fn func(time.Duration)) Option {
	return func(n *Net) { n.sleep = fn }
}

// New creates a Net executing plan, seeded for exact replay.
func New(seed int64, plan Plan, opts ...Option) *Net {
	n := &Net{plan: plan, seed: seed, sleep: time.Sleep}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Seed returns the seed the Net was built with — tests print it on
// failure so the exact fault sequence can be replayed.
func (n *Net) Seed() int64 { return n.seed }

// Conns returns how many connections (streams and packet conns) the Net
// has handed out.
func (n *Net) Conns() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextConn
}

// newConn assigns the next connection ID and derives its private PRNG
// from (seed, id) with a splitmix64 finalizer, so the stream is
// independent of every other connection's.
func (n *Net) newConn() (int64, *rand.Rand) {
	n.mu.Lock()
	n.nextConn++
	id := n.nextConn
	n.mu.Unlock()
	z := uint64(n.seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return id, rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

func chance(rng *rand.Rand, p float64) bool {
	return p > 0 && rng.Float64() < p
}

// span draws a duration uniformly from [lo, hi].
func span(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}

// DialContext dials through the fault plan with net.Dialer underneath.
func (n *Net) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	return n.faultDial(nil, ctx, network, addr)
}

// Dialer wraps base (nil means net.Dialer) in the fault plan; the result
// plugs directly into smtpc.Client.Dialer and friends.
func (n *Net) Dialer(base DialFunc) DialFunc {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		return n.faultDial(base, ctx, network, addr)
	}
}

func (n *Net) faultDial(base DialFunc, ctx context.Context, network, addr string) (net.Conn, error) {
	id, rng := n.newConn()
	// Fixed draw order keeps the trace independent of scheduling.
	if chance(rng, n.plan.DialRefuseRate) {
		n.record(Event{Conn: id, Kind: KindDialRefused})
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrRefused}
	}
	if chance(rng, n.plan.DialTimeoutRate) {
		// Synthesized immediately: deterministic and fast, but classifies
		// as a timeout through the net.Error interface.
		n.record(Event{Conn: id, Kind: KindDialTimeout})
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrDialTimeout}
	}
	if chance(rng, n.plan.DialLatencyRate) {
		d := span(rng, n.plan.LatencyMin, n.plan.LatencyMax)
		n.record(Event{Conn: id, Kind: KindDialLatency, Arg: int64(d)})
		n.sleep(d)
	}
	dial := base
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	c, err := dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return n.wrapConn(c, id, rng), nil
}

// Wrap wraps an existing stream connection in a fresh fault state —
// the seam for server-side injection on individually accepted conns.
func (n *Net) Wrap(c net.Conn) net.Conn {
	id, rng := n.newConn()
	return n.wrapConn(c, id, rng)
}

func (n *Net) wrapConn(c net.Conn, id int64, rng *rand.Rand) net.Conn {
	fc := &conn{Conn: c, net: n, id: id, rng: rng}
	if chance(rng, n.plan.TruncateRate) {
		lo, hi := n.plan.TruncateMin, n.plan.TruncateMax
		if lo <= 0 {
			lo = 1
		}
		fc.truncAt = lo
		if hi > lo {
			fc.truncAt = lo + rng.Int63n(hi-lo+1)
		}
	}
	return fc
}

// Listen binds a TCP listener whose accepted connections run the fault
// plan — the server-side seam (smtpd.Config.Listen, whois).
func (n *Net) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return n.Listener(ln), nil
}

// Listener wraps ln so every accepted connection runs the fault plan.
func (n *Net) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

type listener struct {
	net.Listener
	net *Net
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	id, rng := l.net.newConn()
	return l.net.wrapConn(c, id, rng), nil
}

// ListenPacket binds a UDP socket whose datagrams run the drop plan —
// the dnsserve seam.
func (n *Net) ListenPacket(network, addr string) (net.PacketConn, error) {
	pc, err := net.ListenPacket(network, addr)
	if err != nil {
		return nil, err
	}
	return n.PacketConn(pc), nil
}

// PacketConn wraps pc in the datagram drop plan.
func (n *Net) PacketConn(pc net.PacketConn) net.PacketConn {
	id, rng := n.newConn()
	return &packetConn{PacketConn: pc, net: n, id: id, rng: rng}
}

func (n *Net) record(ev Event) {
	n.mu.Lock()
	n.events = append(n.events, ev)
	n.mu.Unlock()
}

// ---------------------------------------------------------------------
// Stream connection

// conn applies the per-direction stream plan. All fault decisions come
// from the connection's private PRNG under mu, so concurrent readers and
// writers of one conn still draw a deterministic sequence per direction
// interleaving; sleeps happen outside the lock.
type conn struct {
	net.Conn
	net *Net
	id  int64

	mu      sync.Mutex
	rng     *rand.Rand
	seq     int64
	rb, wb  int64 // bytes moved so far, per direction
	truncAt int64 // inbound cut offset; 0 means never
	rdCap   bool  // bandwidth-cap event recorded (read)
	wrCap   bool  // bandwidth-cap event recorded (write)
	stuck   error // sticky fault: reset or truncation EOF
}

func (c *conn) recordLocked(kind Kind, dir Dir, off, arg int64) {
	c.seq++
	c.net.record(Event{Conn: c.id, Seq: c.seq, Kind: kind, Dir: dir, Off: off, Arg: arg})
}

func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.Conn.Read(p)
	}
	c.mu.Lock()
	if c.stuck != nil {
		err := c.stuck
		c.mu.Unlock()
		return 0, err
	}
	pl := c.net.plan.Read
	if chance(c.rng, pl.ResetRate) {
		c.stuck = &net.OpError{Op: "read", Net: "tcp", Err: ErrReset}
		c.recordLocked(KindReset, DirRead, c.rb, 0)
		err := c.stuck
		c.mu.Unlock()
		c.Conn.Close()
		return 0, err
	}
	if c.truncAt > 0 && c.rb >= c.truncAt {
		c.stuck = io.EOF
		c.recordLocked(KindTruncate, DirRead, c.rb, c.truncAt)
		c.mu.Unlock()
		c.Conn.Close()
		return 0, io.EOF
	}
	var lat time.Duration
	if chance(c.rng, pl.LatencyRate) {
		lat = span(c.rng, pl.LatencyMin, pl.LatencyMax)
		c.recordLocked(KindLatency, DirRead, c.rb, int64(lat))
	}
	max := len(p)
	if pl.MaxOpBytes > 0 && max > pl.MaxOpBytes {
		max = pl.MaxOpBytes
		if !c.rdCap {
			c.rdCap = true
			c.recordLocked(KindBandwidth, DirRead, c.rb, int64(pl.MaxOpBytes))
		}
	}
	if max > 1 && chance(c.rng, pl.PartialRate) {
		max = 1 + c.rng.Intn(max/2+1)
		c.recordLocked(KindPartialRead, DirRead, c.rb, int64(max))
	}
	if c.truncAt > 0 && c.rb+int64(max) > c.truncAt {
		max = int(c.truncAt - c.rb)
	}
	c.mu.Unlock()
	if lat > 0 {
		c.net.sleep(lat)
	}
	nr, err := c.Conn.Read(p[:max])
	c.mu.Lock()
	c.rb += int64(nr)
	c.mu.Unlock()
	return nr, err
}

func (c *conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return c.Conn.Write(p)
	}
	c.mu.Lock()
	if c.stuck != nil {
		err := c.stuck
		c.mu.Unlock()
		return 0, err
	}
	pl := c.net.plan.Write
	if chance(c.rng, pl.ResetRate) {
		c.stuck = &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
		c.recordLocked(KindReset, DirWrite, c.wb, 0)
		err := c.stuck
		c.mu.Unlock()
		c.Conn.Close()
		return 0, err
	}
	var lat time.Duration
	if chance(c.rng, pl.LatencyRate) {
		lat = span(c.rng, pl.LatencyMin, pl.LatencyMax)
		c.recordLocked(KindLatency, DirWrite, c.wb, int64(lat))
	}
	// Fragmentation: split the payload at a drawn point and push the
	// halves as separate segments. The peer sees the same bytes, possibly
	// across more reads — the contract of Write is preserved.
	frag := 0
	if len(p) > 1 && chance(c.rng, pl.PartialRate) {
		frag = 1 + c.rng.Intn(len(p)-1)
		c.recordLocked(KindFragWrite, DirWrite, c.wb, int64(frag))
	}
	chunk := pl.MaxOpBytes
	if chunk > 0 && !c.wrCap && len(p) > chunk {
		c.wrCap = true
		c.recordLocked(KindBandwidth, DirWrite, c.wb, int64(chunk))
	}
	c.mu.Unlock()
	if lat > 0 {
		c.net.sleep(lat)
	}
	written := 0
	for _, part := range splitPayload(p, frag, chunk) {
		nw, err := c.Conn.Write(part)
		written += nw
		if err != nil {
			c.addWritten(int64(written))
			return written, err
		}
	}
	c.addWritten(int64(written))
	return written, nil
}

func (c *conn) addWritten(nw int64) {
	c.mu.Lock()
	c.wb += nw
	c.mu.Unlock()
}

// splitPayload cuts p at the fragmentation point (0 = none), then caps
// every piece at chunk bytes (0 = uncapped).
func splitPayload(p []byte, frag, chunk int) [][]byte {
	var halves [][]byte
	if frag > 0 && frag < len(p) {
		halves = [][]byte{p[:frag], p[frag:]}
	} else {
		halves = [][]byte{p}
	}
	if chunk <= 0 {
		return halves
	}
	var out [][]byte
	for _, h := range halves {
		for len(h) > chunk {
			out = append(out, h[:chunk])
			h = h[chunk:]
		}
		if len(h) > 0 {
			out = append(out, h)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Packet connection

// packetConn drops datagrams in both directions per the plan's DropRate.
type packetConn struct {
	net.PacketConn
	net *Net
	id  int64

	mu  sync.Mutex
	rng *rand.Rand
	seq int64
	rp  int64 // packets received (before dropping)
	wp  int64 // packets sent (before dropping)
}

func (pc *packetConn) recordLocked(kind Kind, dir Dir, off, arg int64) {
	pc.seq++
	pc.net.record(Event{Conn: pc.id, Seq: pc.seq, Kind: kind, Dir: dir, Off: off, Arg: arg})
}

func (pc *packetConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := pc.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		pc.mu.Lock()
		pc.rp++
		drop := chance(pc.rng, pc.net.plan.DropRate)
		if drop {
			pc.recordLocked(KindDropPacket, DirRead, pc.rp, int64(n))
		}
		pc.mu.Unlock()
		if !drop {
			return n, addr, nil
		}
	}
}

func (pc *packetConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	pc.mu.Lock()
	pc.wp++
	drop := chance(pc.rng, pc.net.plan.DropRate)
	if drop {
		pc.recordLocked(KindDropPacket, DirWrite, pc.wp, int64(len(p)))
	}
	pc.mu.Unlock()
	if drop {
		// The datagram vanishes "on the wire": success to the sender.
		return len(p), nil
	}
	return pc.PacketConn.WriteTo(p, addr)
}
